package hdl

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"maest/internal/cells"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// ParseBench reads an ISCAS-85/89-style .bench gate-level description
// and technology-maps it onto the given process's cell library:
//
//	# comment
//	INPUT(a)
//	INPUT(b)
//	OUTPUT(y)
//	n1 = NAND(a, b)
//	y  = NOT(n1)
//
// The module takes its name from the name argument.  Gate functions
// are mapped through cells.Mapper, so wide gates decompose into
// library trees exactly as a synthesis front end would emit them.
func ParseBench(r io.Reader, name string, p *tech.Process) (*netlist.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	b := netlist.NewBuilder(name)
	m := cells.NewMapper(p, b)
	var (
		line    int
		outputs []string
		gateSeq int
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		switch {
		case matchDecl(text, "INPUT"):
			arg, err := declArg(text, "INPUT", line)
			if err != nil {
				return nil, err
			}
			b.AddPort(arg, netlist.In, arg)
		case matchDecl(text, "OUTPUT"):
			arg, err := declArg(text, "OUTPUT", line)
			if err != nil {
				return nil, err
			}
			// Defer: the port is added after parsing so the driven
			// net exists, mirroring how ISCAS files forward-declare
			// outputs.
			outputs = append(outputs, arg)
		default:
			lhs, rhs, ok := strings.Cut(text, "=")
			if !ok {
				return nil, fmt.Errorf("hdl: bench line %d: expected assignment or INPUT/OUTPUT", line)
			}
			out := strings.TrimSpace(lhs)
			if out == "" {
				return nil, fmt.Errorf("hdl: bench line %d: empty output name", line)
			}
			fn, args, err := parseCall(strings.TrimSpace(rhs), line)
			if err != nil {
				return nil, err
			}
			f, err := cells.ParseFunc(fn)
			if err != nil {
				return nil, fmt.Errorf("hdl: bench line %d: %v", line, err)
			}
			gateSeq++
			gname := fmt.Sprintf("%s_%d", strings.ToLower(fn), gateSeq)
			if err := m.Gate(gname, f, args, out); err != nil {
				return nil, fmt.Errorf("hdl: bench line %d: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hdl: read: %w", err)
	}
	for _, out := range outputs {
		b.AddPort(out, netlist.Out, out)
	}
	c, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("hdl: bench: %w", err)
	}
	return c, nil
}

func matchDecl(text, kw string) bool {
	rest, ok := strings.CutPrefix(text, kw)
	if !ok {
		return false
	}
	rest = strings.TrimSpace(rest)
	return strings.HasPrefix(rest, "(")
}

func declArg(text, kw string, line int) (string, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(text, kw))
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", fmt.Errorf("hdl: bench line %d: want '%s(<name>)'", line, kw)
	}
	arg := strings.TrimSpace(rest[1 : len(rest)-1])
	if arg == "" || strings.ContainsAny(arg, ",() \t") {
		return "", fmt.Errorf("hdl: bench line %d: bad %s argument %q", line, kw, arg)
	}
	return arg, nil
}

func parseCall(rhs string, line int) (fn string, args []string, err error) {
	open := strings.IndexByte(rhs, '(')
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return "", nil, fmt.Errorf("hdl: bench line %d: want '<fn>(<args>)', got %q", line, rhs)
	}
	fn = strings.TrimSpace(rhs[:open])
	if fn == "" {
		return "", nil, fmt.Errorf("hdl: bench line %d: missing function name", line)
	}
	inner := rhs[open+1 : len(rhs)-1]
	for _, part := range strings.Split(inner, ",") {
		arg := strings.TrimSpace(part)
		if arg == "" {
			return "", nil, fmt.Errorf("hdl: bench line %d: empty argument in %q", line, rhs)
		}
		args = append(args, arg)
	}
	if len(args) == 0 {
		return "", nil, fmt.Errorf("hdl: bench line %d: call %q has no arguments", line, rhs)
	}
	return fn, args, nil
}
