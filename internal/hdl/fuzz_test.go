package hdl

import (
	"bytes"
	"strings"
	"testing"

	"maest/internal/tech"
)

// FuzzParseMnet checks the parser never panics and that successful
// parses round-trip through WriteMnet (when names are writable).
func FuzzParseMnet(f *testing.F) {
	f.Add(smallMnet)
	f.Add("module m\ndevice g INV a b\nend\n")
	f.Add("module m\nport in a\ndevice g DFF a - q\nend\n")
	f.Add("")
	f.Add("module\n")
	f.Add("module m\ndevice $g INV a b\nend\n")
	f.Fuzz(func(t *testing.T, input string) {
		c, err := ParseMnet(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMnet(&buf, c); err != nil {
			return // unwritable names are fine
		}
		c2, err := ParseMnet(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of own output failed: %v\n%s", err, buf.String())
		}
		if c2.NumDevices() != c.NumDevices() || c2.NumNets() != c.NumNets() {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzParseBench checks the .bench front end never panics.
func FuzzParseBench(f *testing.F) {
	f.Add(smallBench)
	f.Add("INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n")
	f.Add("y = NAND(a\n")
	f.Add("INPUT()\n")
	f.Add("= NAND(a, b)\n")
	p := tech.NMOS25()
	f.Fuzz(func(t *testing.T, input string) {
		c, err := ParseBench(strings.NewReader(input), "fz", p)
		if err != nil {
			return
		}
		if c.NumDevices() == 0 {
			t.Fatal("successful parse produced empty circuit")
		}
	})
}
