package hdl

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maest/internal/gen"
	"maest/internal/netlist"
	"maest/internal/tech"
)

func TestWriteBenchRoundTrip(t *testing.T) {
	p := tech.NMOS25()
	orig, err := ParseBench(strings.NewReader(smallBench), "c17", p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBench(bytes.NewReader(buf.Bytes()), "c17", p)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	if back.NumDevices() != orig.NumDevices() || back.NumPorts() != orig.NumPorts() ||
		back.NumNets() != orig.NumNets() {
		t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
			back.NumDevices(), back.NumPorts(), back.NumNets(),
			orig.NumDevices(), orig.NumPorts(), orig.NumNets())
	}
	// Net degrees must match net-by-net.
	for _, n := range orig.Nets {
		n2 := back.NetByName(n.Name)
		if n2 == nil || n2.Degree() != n.Degree() {
			t.Fatalf("net %q degree not preserved", n.Name)
		}
	}
}

func TestWriteBenchRandomCircuits(t *testing.T) {
	// Native-cell random circuits round-trip up to regenerated
	// instance names.  (Mapper-decomposed gates re-parse as their
	// decomposed structure, so only device/net counts are compared.)
	p := tech.NMOS25()
	for seed := int64(1); seed <= 4; seed++ {
		c, err := gen.RandomCircuit(gen.RandomConfig{
			Name: "r", Gates: 40, Inputs: 5, Outputs: 4, Seed: seed,
		}, p)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteBench(&buf, c); err != nil {
			t.Fatal(err)
		}
		back, err := ParseBench(bytes.NewReader(buf.Bytes()), "r", p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if back.NumDevices() != c.NumDevices() {
			t.Fatalf("seed %d: devices %d -> %d", seed, c.NumDevices(), back.NumDevices())
		}
	}
}

func TestWriteBenchRejectsUnwritable(t *testing.T) {
	// Transistor-level device.
	b := netlist.NewBuilder("x")
	b.AddDevice("m1", "ENH", "a", "b", "c")
	b.AddDevice("m2", "DEP", "c", "c", "")
	b.AddPort("pa", netlist.In, "a")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBench(&bytes.Buffer{}, c); err == nil {
		t.Error("transistor circuit accepted")
	}
	// Unconnected combinational input.
	b2 := netlist.NewBuilder("y")
	b2.AddDevice("g1", "NAND2", "a", "", "y")
	b2.AddDevice("g2", "INV", "y", "a")
	c2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBench(&bytes.Buffer{}, c2); err == nil {
		t.Error("open input accepted")
	}
	// Inout port.
	b3 := netlist.NewBuilder("z")
	b3.AddDevice("g1", "INV", "a", "b")
	b3.AddPort("pa", netlist.InOut, "a")
	c3, err := b3.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBench(&bytes.Buffer{}, c3); err == nil {
		t.Error("inout port accepted")
	}
}

func TestWriteBenchOpenClockAllowed(t *testing.T) {
	b := netlist.NewBuilder("ff")
	b.AddDevice("f1", "DFF", "d", "", "q")
	b.AddDevice("g1", "INV", "q", "d")
	b.AddPort("pq", netlist.Out, "q")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBench(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "q = DFF(d)") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestParseBenchTestdataC17(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "testdata", "c17.bench"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := ParseBench(f, "c17", tech.NMOS25())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDevices() != 6 || c.NumPorts() != 7 {
		t.Fatalf("c17 shape: N=%d ports=%d", c.NumDevices(), c.NumPorts())
	}
}
