package hdl

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"maest/internal/cells"
	"maest/internal/netlist"
)

// WriteBench serializes a gate-level circuit in ISCAS .bench form,
// inverting the library naming convention (NAND3 → NAND(a,b,c)).
// Only circuits whose every device maps to a known gate function can
// be written; transistor-level circuits and cells with unconnected
// inputs are rejected.  Together with ParseBench this gives a lossy
// but useful interchange path: the gate structure round-trips, while
// mapped names are regenerated.
func WriteBench(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s (written by maest)\n", c.Name)
	for _, p := range c.Ports {
		switch p.Dir {
		case netlist.In:
			fmt.Fprintf(bw, "INPUT(%s)\n", p.Net.Name)
		case netlist.Out:
			fmt.Fprintf(bw, "OUTPUT(%s)\n", p.Net.Name)
		default:
			return fmt.Errorf("hdl: port %q: .bench has no inout ports", p.Name)
		}
	}
	for _, d := range c.Devices {
		f, _, err := cells.CellFunc(d.Type)
		if err != nil {
			return fmt.Errorf("hdl: device %q: %v", d.Name, err)
		}
		if len(d.Pins) < 2 {
			return fmt.Errorf("hdl: device %q has no output pin", d.Name)
		}
		out := d.Pins[len(d.Pins)-1]
		if out == nil {
			return fmt.Errorf("hdl: device %q: unconnected output", d.Name)
		}
		var ins []string
		for i, n := range d.Pins[:len(d.Pins)-1] {
			if n == nil {
				// Sequential cells may leave the clock open; other
				// open inputs are not expressible in .bench.
				if (f == cells.FuncDFF || f == cells.FuncLatch) && i == len(d.Pins)-2 {
					continue
				}
				return fmt.Errorf("hdl: device %q: unconnected input %d", d.Name, i)
			}
			ins = append(ins, n.Name)
		}
		if len(ins) == 0 {
			return fmt.Errorf("hdl: device %q has no inputs", d.Name)
		}
		fn := benchFuncName(f)
		fmt.Fprintf(bw, "%s = %s(%s)\n", out.Name, fn, strings.Join(ins, ", "))
	}
	return bw.Flush()
}

func benchFuncName(f cells.Func) string {
	switch f {
	case cells.FuncNot:
		return "NOT"
	case cells.FuncBuf:
		return "BUFF"
	case cells.FuncLatch:
		return "LATCH"
	default:
		return f.String()
	}
}
