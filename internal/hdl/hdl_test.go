package hdl

import (
	"bytes"
	"strings"
	"testing"

	"maest/internal/netlist"
	"maest/internal/tech"
)

const smallMnet = `
# a tiny module
module small
port in a
port in b
port out y
device g1 NAND2 a b n1
device g2 INV n1 n2
device g3 NOR2 n1 b n3
device g4 NAND2 n2 n3 y
end
`

func TestParseMnet(t *testing.T) {
	c, err := ParseMnet(strings.NewReader(smallMnet))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "small" {
		t.Fatalf("name = %q", c.Name)
	}
	if c.NumDevices() != 4 || c.NumPorts() != 3 || c.NumNets() != 6 {
		t.Fatalf("N=%d ports=%d nets=%d", c.NumDevices(), c.NumPorts(), c.NumNets())
	}
	if c.NetByName("n1").Degree() != 3 {
		t.Fatalf("n1 degree = %d", c.NetByName("n1").Degree())
	}
}

func TestParseMnetUnconnectedPin(t *testing.T) {
	in := `
module nc
port out y
device g1 DFF d - y
device g2 INV y d
end
`
	c, err := ParseMnet(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	d := c.DeviceByName("g1")
	if d.Pins[1] != nil {
		t.Fatal("'-' pin should be unconnected")
	}
	if d.Pins[0] == nil || d.Pins[0].Name != "d" {
		t.Fatal("pin 0 should connect to d")
	}
}

func TestParseMnetErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"no module header", "port in a\n"},
		{"dup module", "module a\nmodule b\nend\n"},
		{"module args", "module\nend\n"},
		{"bad port", "module m\nport a\nend\n"},
		{"bad dir", "module m\nport sideways a\nend\n"},
		{"short device", "module m\ndevice g INV\nend\n"},
		{"unknown directive", "module m\nwombat\nend\n"},
		{"no end", "module m\ndevice g INV a b\n"},
		{"trailing content", "module m\ndevice g INV a b\nend\ndevice h INV b a\n"},
		{"end with args", "module m\ndevice g INV a b\nend now\n"},
		{"reserved device name", "module m\ndevice $g INV a b\nend\n"},
		{"reserved net name", "module m\ndevice g INV $a b\nend\n"},
		{"reserved module name", "module $m\ndevice g INV a b\nend\n"},
		{"reserved port name", "module m\nport in $a\ndevice g INV a b\nend\n"},
		{"dash as real name", "module m\ndevice - INV a b\nend\n"},
		{"no devices", "module m\nport in a\nend\n"},
	}
	for _, c := range cases {
		if _, err := ParseMnet(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: parse accepted malformed input", c.name)
		}
	}
}

func TestMnetRoundTrip(t *testing.T) {
	c, err := ParseMnet(strings.NewReader(smallMnet))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMnet(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseMnet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\noutput:\n%s", err, buf.String())
	}
	if c2.Name != c.Name || c2.NumDevices() != c.NumDevices() ||
		c2.NumNets() != c.NumNets() || c2.NumPorts() != c.NumPorts() {
		t.Fatal("round trip changed circuit shape")
	}
	for _, d := range c.Devices {
		d2 := c2.DeviceByName(d.Name)
		if d2 == nil || d2.Type != d.Type || len(d2.Pins) != len(d.Pins) {
			t.Fatalf("device %q not preserved", d.Name)
		}
		for i := range d.Pins {
			switch {
			case d.Pins[i] == nil && d2.Pins[i] == nil:
			case d.Pins[i] != nil && d2.Pins[i] != nil && d.Pins[i].Name == d2.Pins[i].Name:
			default:
				t.Fatalf("device %q pin %d not preserved", d.Name, i)
			}
		}
	}
}

func TestWriteMnetRejectsGeneratedNames(t *testing.T) {
	b := netlist.NewBuilder("g")
	b.AddDevice("u$1", "INV", "a", "b")
	b.AddDevice("u2", "INV", "b", "a")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMnet(&bytes.Buffer{}, c); err == nil {
		t.Fatal("expected rejection of generated device name")
	}
	b2 := netlist.NewBuilder("g")
	b2.AddDevice("u1", "INV", "$a", "b")
	b2.AddDevice("u2", "INV", "b", "$a")
	c2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMnet(&bytes.Buffer{}, c2); err == nil {
		t.Fatal("expected rejection of generated net name")
	}
}

const smallBench = `
# c17-like
INPUT(g1)
INPUT(g2)
INPUT(g3)
INPUT(g6)
INPUT(g7)
OUTPUT(g22)
OUTPUT(g23)
g10 = NAND(g1, g3)
g11 = NAND(g3, g6)
g16 = NAND(g2, g11)
g19 = NAND(g11, g7)
g22 = NAND(g10, g16)
g23 = NAND(g16, g19)
`

func TestParseBench(t *testing.T) {
	p := tech.NMOS25()
	c, err := ParseBench(strings.NewReader(smallBench), "c17", p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "c17" {
		t.Fatalf("name = %q", c.Name)
	}
	if c.NumDevices() != 6 {
		t.Fatalf("N = %d, want 6", c.NumDevices())
	}
	if c.NumPorts() != 7 {
		t.Fatalf("ports = %d, want 7", c.NumPorts())
	}
	for _, d := range c.Devices {
		if d.Type != "NAND2" {
			t.Fatalf("device %q type %q, want NAND2", d.Name, d.Type)
		}
	}
	if !c.NetByName("g22").External() {
		t.Fatal("g22 should be an output port net")
	}
}

func TestParseBenchGateVariety(t *testing.T) {
	p := tech.NMOS25()
	in := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(q)
n1 = AND(a, b, c)
n2 = XOR(a, n1)
n3 = NOT(n2)
n4 = OR(n3, b)
q = DFF(n4)
`
	circ, err := ParseBench(strings.NewReader(in), "mix", p)
	if err != nil {
		t.Fatal(err)
	}
	// AND3 -> NAND3+INV (2), XOR -> 1, NOT -> 1, OR -> NOR2+INV (2),
	// DFF -> 1: total 7.
	if circ.NumDevices() != 7 {
		t.Fatalf("N = %d, want 7", circ.NumDevices())
	}
}

func TestParseBenchErrors(t *testing.T) {
	p := tech.NMOS25()
	cases := []struct{ name, in string }{
		{"garbage", "this is not bench\n"},
		{"bad input decl", "INPUT a\n"},
		{"empty input decl", "INPUT()\n"},
		{"bad call", "y = NAND\n"},
		{"empty fn", "y = (a, b)\n"},
		{"empty arg", "INPUT(a)\ny = NAND(a, )\n"},
		{"unknown fn", "INPUT(a)\ny = MAJ3(a, a, a)\n"},
		{"empty lhs", "INPUT(a)\n = NAND(a, a)\n"},
		{"no gates", "INPUT(a)\nOUTPUT(a)\n"},
	}
	for _, c := range cases {
		if _, err := ParseBench(strings.NewReader(c.in), "bad", p); err == nil {
			t.Errorf("%s: accepted malformed input", c.name)
		}
	}
}

func TestParseBenchToStatsIntegration(t *testing.T) {
	p := tech.NMOS25()
	c, err := ParseBench(strings.NewReader(smallBench), "c17", p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := netlist.Gather(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 6 || s.NumPorts != 7 {
		t.Fatalf("stats N=%d ports=%d", s.N, s.NumPorts)
	}
	// Every routable net in c17 has degree 2: g3(g10,g11), g11(g16,g19),
	// g10(g22), g16(g22,g23)... g10 has degree 2 (nand g10 out + g22 in).
	if s.H == 0 || s.MaxDegree < 2 {
		t.Fatalf("stats H=%d maxD=%d", s.H, s.MaxDegree)
	}
}

func TestParseBenchMux(t *testing.T) {
	p := tech.NMOS25()
	in := `
INPUT(s)
INPUT(a)
INPUT(b)
OUTPUT(y)
y = MUX(s, a, b)
`
	c, err := ParseBench(strings.NewReader(in), "mx", p)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDevices() != 1 || c.Devices[0].Type != "MUX2" {
		t.Fatalf("bench mux: %d devices", c.NumDevices())
	}
}
