// Package db is the estimate database of Fig. 1: the module area and
// aspect-ratio records, together with the chip's global module
// interconnections, that the estimator writes and the floor planner
// reads.  Records serialize to a line-oriented text format so the two
// tools can run as separate processes, as in the paper's CAD flow.
package db

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"maest/internal/core"
)

// ErrDB wraps database format errors.
var ErrDB = errors.New("db: invalid database")

// Shape is one candidate realization of a module.
type Shape struct {
	// Label identifies the estimate source, e.g. "sc-rows3",
	// "fc-exact".
	Label string
	// Rows is the standard-cell row count (0 for full-custom
	// shapes).
	Rows int
	// W, H are the estimated dimensions in λ.
	W, H float64
}

// Area returns the shape's area in λ².
func (s Shape) Area() float64 { return s.W * s.H }

// Aspect returns W/H (0 for degenerate shapes).
func (s Shape) Aspect() float64 {
	if s.H == 0 {
		return 0
	}
	return s.W / s.H
}

// Module is one module's estimate record.
type Module struct {
	Name    string
	Devices int
	Nets    int
	Ports   int
	Shapes  []Shape
	// Congestion optionally summarizes the module's congestion map
	// (internal/congest) for the floor planner: a planner packing
	// modules can keep high-overflow modules away from each other and
	// from the chip's routing-dense regions.
	Congestion *Congestion
}

// Congestion is the floor-planner-facing summary of a congestion map.
type Congestion struct {
	// Model names the demand accounting ("occupancy" or "crossing").
	Model string
	// Rows is the row (or grid-row) count the map was analyzed at.
	Rows int
	// PeakUtil is the highest channel demand/capacity ratio.
	PeakUtil float64
	// PeakOverflow is the highest channel P(tracks > capacity).
	PeakOverflow float64
	// HotChannel is the hottest channel index (-1 when demand-free).
	HotChannel int
	// ExpectedFeeds is the total expected feed-through count.
	ExpectedFeeds float64
}

// GlobalNet is a chip-level net connecting module ports.
type GlobalNet struct {
	Name string
	Pins []GlobalPin
}

// GlobalPin is one endpoint of a global net.
type GlobalPin struct {
	Module, Port string
}

// Database is the full floor-planner input.
type Database struct {
	Chip    string
	Modules []Module
	Nets    []GlobalNet
}

// ModuleByName returns the named module record, or nil.
func (d *Database) ModuleByName(name string) *Module {
	for i := range d.Modules {
		if d.Modules[i].Name == name {
			return &d.Modules[i]
		}
	}
	return nil
}

// FromResult converts an estimator pipeline result into a module
// record carrying every candidate shape: the standard-cell candidates
// (one per row count) and both full-custom modes.
func FromResult(res *core.Result) Module {
	m := Module{
		Name:    res.Module,
		Devices: res.Stats.N,
		Nets:    res.Stats.H,
		Ports:   res.Stats.NumPorts,
	}
	for _, sc := range res.SCCandidates {
		m.Shapes = append(m.Shapes, Shape{
			Label: fmt.Sprintf("sc-rows%d", sc.Rows),
			Rows:  sc.Rows,
			W:     sc.Width,
			H:     sc.Height,
		})
	}
	if res.SC != nil && len(m.Shapes) == 0 {
		m.Shapes = append(m.Shapes, Shape{
			Label: fmt.Sprintf("sc-rows%d", res.SC.Rows),
			Rows:  res.SC.Rows,
			W:     res.SC.Width,
			H:     res.SC.Height,
		})
	}
	if res.FCExact != nil {
		m.Shapes = append(m.Shapes, Shape{Label: "fc-exact", W: res.FCExact.Width, H: res.FCExact.Height})
	}
	if res.FCAverage != nil {
		m.Shapes = append(m.Shapes, Shape{Label: "fc-average", W: res.FCAverage.Width, H: res.FCAverage.Height})
	}
	return m
}

// Write serializes the database.
func Write(w io.Writer, d *Database) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "chip %s\n", d.Chip)
	for _, m := range d.Modules {
		fmt.Fprintf(bw, "module %s %d %d %d\n", m.Name, m.Devices, m.Nets, m.Ports)
		for _, s := range m.Shapes {
			fmt.Fprintf(bw, "shape %s %d %.3f %.3f\n", s.Label, s.Rows, s.W, s.H)
		}
		if c := m.Congestion; c != nil {
			fmt.Fprintf(bw, "congest %s %d %.4f %.4f %d %.3f\n",
				c.Model, c.Rows, c.PeakUtil, c.PeakOverflow, c.HotChannel, c.ExpectedFeeds)
		}
	}
	for _, n := range d.Nets {
		fmt.Fprintf(bw, "net %s", n.Name)
		for _, pin := range n.Pins {
			fmt.Fprintf(bw, " %s.%s", pin.Module, pin.Port)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// Read parses a database written by Write.
func Read(r io.Reader) (*Database, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var (
		d      *Database
		line   int
		closed bool
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if d == nil && fields[0] != "chip" {
			return nil, fmt.Errorf("%w: line %d: %q before chip header", ErrDB, line, fields[0])
		}
		if closed {
			return nil, fmt.Errorf("%w: line %d: content after 'end'", ErrDB, line)
		}
		switch fields[0] {
		case "chip":
			if d != nil {
				return nil, fmt.Errorf("%w: line %d: duplicate chip header", ErrDB, line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: want 'chip <name>'", ErrDB, line)
			}
			d = &Database{Chip: fields[1]}
		case "module":
			if len(fields) != 5 {
				return nil, fmt.Errorf("%w: line %d: want 'module <name> <devices> <nets> <ports>'", ErrDB, line)
			}
			nums, err := atois(fields[2:], line)
			if err != nil {
				return nil, err
			}
			d.Modules = append(d.Modules, Module{
				Name: fields[1], Devices: nums[0], Nets: nums[1], Ports: nums[2],
			})
		case "shape":
			if len(d.Modules) == 0 {
				return nil, fmt.Errorf("%w: line %d: shape before any module", ErrDB, line)
			}
			if len(fields) != 5 {
				return nil, fmt.Errorf("%w: line %d: want 'shape <label> <rows> <w> <h>'", ErrDB, line)
			}
			rows, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad rows %q", ErrDB, line, fields[2])
			}
			wv, err1 := strconv.ParseFloat(fields[3], 64)
			hv, err2 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("%w: line %d: bad shape dimensions", ErrDB, line)
			}
			mod := &d.Modules[len(d.Modules)-1]
			mod.Shapes = append(mod.Shapes, Shape{Label: fields[1], Rows: rows, W: wv, H: hv})
		case "congest":
			if len(d.Modules) == 0 {
				return nil, fmt.Errorf("%w: line %d: congest before any module", ErrDB, line)
			}
			if len(fields) != 7 {
				return nil, fmt.Errorf("%w: line %d: want 'congest <model> <rows> <peakutil> <peakoverflow> <hotchannel> <expfeeds>'", ErrDB, line)
			}
			rows, err1 := strconv.Atoi(fields[2])
			hot, err2 := strconv.Atoi(fields[5])
			util, err3 := strconv.ParseFloat(fields[3], 64)
			over, err4 := strconv.ParseFloat(fields[4], 64)
			feeds, err5 := strconv.ParseFloat(fields[6], 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
				return nil, fmt.Errorf("%w: line %d: bad congest fields", ErrDB, line)
			}
			mod := &d.Modules[len(d.Modules)-1]
			if mod.Congestion != nil {
				return nil, fmt.Errorf("%w: line %d: duplicate congest for module %q", ErrDB, line, mod.Name)
			}
			mod.Congestion = &Congestion{
				Model: fields[1], Rows: rows, PeakUtil: util,
				PeakOverflow: over, HotChannel: hot, ExpectedFeeds: feeds,
			}
		case "net":
			if len(fields) < 3 {
				return nil, fmt.Errorf("%w: line %d: want 'net <name> <mod.port>...'", ErrDB, line)
			}
			n := GlobalNet{Name: fields[1]}
			for _, pin := range fields[2:] {
				mod, port, ok := strings.Cut(pin, ".")
				if !ok || mod == "" || port == "" {
					return nil, fmt.Errorf("%w: line %d: bad pin %q", ErrDB, line, pin)
				}
				n.Pins = append(n.Pins, GlobalPin{Module: mod, Port: port})
			}
			d.Nets = append(d.Nets, n)
		case "end":
			closed = true
		default:
			return nil, fmt.Errorf("%w: line %d: unknown directive %q", ErrDB, line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: read: %v", ErrDB, err)
	}
	if d == nil {
		return nil, fmt.Errorf("%w: empty input", ErrDB)
	}
	if !closed {
		return nil, fmt.Errorf("%w: missing 'end'", ErrDB)
	}
	return d, Validate(d)
}

// Validate checks referential integrity: every net pin must reference
// an existing module, and every module must carry at least one shape.
func Validate(d *Database) error {
	names := make(map[string]bool, len(d.Modules))
	for _, m := range d.Modules {
		if names[m.Name] {
			return fmt.Errorf("%w: duplicate module %q", ErrDB, m.Name)
		}
		names[m.Name] = true
		if len(m.Shapes) == 0 {
			return fmt.Errorf("%w: module %q has no shapes", ErrDB, m.Name)
		}
		for _, s := range m.Shapes {
			if s.W <= 0 || s.H <= 0 {
				return fmt.Errorf("%w: module %q shape %q has non-positive size", ErrDB, m.Name, s.Label)
			}
		}
		if c := m.Congestion; c != nil {
			if c.Rows < 1 {
				return fmt.Errorf("%w: module %q congest rows %d < 1", ErrDB, m.Name, c.Rows)
			}
			if c.PeakOverflow < 0 || c.PeakOverflow > 1 {
				return fmt.Errorf("%w: module %q congest overflow %g outside [0,1]", ErrDB, m.Name, c.PeakOverflow)
			}
			if c.PeakUtil < 0 {
				return fmt.Errorf("%w: module %q congest utilization %g < 0", ErrDB, m.Name, c.PeakUtil)
			}
			if c.HotChannel < -1 {
				return fmt.Errorf("%w: module %q congest hot channel %d", ErrDB, m.Name, c.HotChannel)
			}
		}
	}
	for _, n := range d.Nets {
		if len(n.Pins) < 2 {
			return fmt.Errorf("%w: net %q has fewer than 2 pins", ErrDB, n.Name)
		}
		for _, pin := range n.Pins {
			if !names[pin.Module] {
				return fmt.Errorf("%w: net %q references unknown module %q", ErrDB, n.Name, pin.Module)
			}
		}
	}
	return nil
}

func atois(fields []string, line int) ([]int, error) {
	out := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: bad integer %q", ErrDB, line, f)
		}
		out[i] = v
	}
	return out, nil
}
