package db

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks the estimate-database parser never panics and that
// accepted databases round-trip.
func FuzzRead(f *testing.F) {
	var sample bytes.Buffer
	if err := Write(&sample, sampleDB()); err != nil {
		f.Fatal(err)
	}
	f.Add(sample.String())
	f.Add("chip c\nend\n")
	f.Add("module m 1 1 1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("write of parsed db failed: %v", err)
		}
		if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("reparse failed: %v\n%s", err, buf.String())
		}
	})
}

func sampleDB() *Database {
	return &Database{
		Chip: "c",
		Modules: []Module{{Name: "m", Devices: 2, Nets: 1, Ports: 1,
			Shapes: []Shape{{Label: "s", Rows: 1, W: 10, H: 10}}}},
	}
}
