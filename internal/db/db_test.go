package db

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"maest/internal/cells"
	"maest/internal/core"
	"maest/internal/gen"
	"maest/internal/netlist"
	"maest/internal/tech"
)

func sample() *Database {
	return &Database{
		Chip: "demo",
		Modules: []Module{
			{
				Name: "alu", Devices: 120, Nets: 90, Ports: 14,
				Shapes: []Shape{
					{Label: "sc-rows2", Rows: 2, W: 400, H: 200},
					{Label: "sc-rows3", Rows: 3, W: 280, H: 260},
					{Label: "fc-exact", W: 310, H: 310},
				},
				Congestion: &Congestion{
					Model: "crossing", Rows: 3, PeakUtil: 1.25,
					PeakOverflow: 0.375, HotChannel: 2, ExpectedFeeds: 4.5,
				},
			},
			{
				Name: "ctl", Devices: 40, Nets: 30, Ports: 8,
				Shapes: []Shape{{Label: "sc-rows2", Rows: 2, W: 150, H: 120}},
			},
		},
		Nets: []GlobalNet{
			{Name: "g1", Pins: []GlobalPin{{"alu", "a"}, {"ctl", "y"}}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\ninput:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, d)
	}
}

func TestShapeHelpers(t *testing.T) {
	s := Shape{W: 100, H: 50}
	if s.Area() != 5000 {
		t.Fatalf("area = %g", s.Area())
	}
	if s.Aspect() != 2 {
		t.Fatalf("aspect = %g", s.Aspect())
	}
	if (Shape{W: 5}).Aspect() != 0 {
		t.Fatal("degenerate aspect should be 0")
	}
}

func TestModuleByName(t *testing.T) {
	d := sample()
	if d.ModuleByName("alu") == nil || d.ModuleByName("nope") != nil {
		t.Fatal("ModuleByName broken")
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"no chip", "module m 1 1 1\nend\n"},
		{"dup chip", "chip a\nchip b\nend\n"},
		{"bad module", "chip a\nmodule m 1 1\nend\n"},
		{"bad int", "chip a\nmodule m one 1 1\nend\n"},
		{"orphan shape", "chip a\nshape s 1 1 1\nend\n"},
		{"bad shape", "chip a\nmodule m 1 1 1\nshape s 1 1\nend\n"},
		{"bad shape rows", "chip a\nmodule m 1 1 1\nshape s x 1 1\nend\n"},
		{"bad shape dims", "chip a\nmodule m 1 1 1\nshape s 1 x 1\nend\n"},
		{"short net", "chip a\nmodule m 1 1 1\nshape s 1 1 1\nnet n\nend\n"},
		{"bad pin", "chip a\nmodule m 1 1 1\nshape s 1 1 1\nnet n m.a nodot\nend\n"},
		{"unknown directive", "chip a\nwombat\nend\n"},
		{"no end", "chip a\n"},
		{"trailing", "chip a\nend\nchip b\n"},
		{"moduleless net", "chip a\nmodule m 1 1 1\nshape s 1 1 1\nnet n m.a q.b\nend\n"},
		{"single pin net", "chip a\nmodule m 1 1 1\nshape s 1 1 1\nnet n m.a\nend\n"},
		{"shapeless module", "chip a\nmodule m 1 1 1\nend\n"},
		{"orphan congest", "chip a\ncongest occupancy 2 0.5 0.1 0 1.0\nend\n"},
		{"short congest", "chip a\nmodule m 1 1 1\nshape s 1 1 1\ncongest occupancy 2 0.5\nend\n"},
		{"bad congest rows", "chip a\nmodule m 1 1 1\nshape s 1 1 1\ncongest occupancy x 0.5 0.1 0 1.0\nend\n"},
		{"bad congest float", "chip a\nmodule m 1 1 1\nshape s 1 1 1\ncongest occupancy 2 x 0.1 0 1.0\nend\n"},
		{"dup congest", "chip a\nmodule m 1 1 1\nshape s 1 1 1\ncongest occupancy 2 0.5 0.1 0 1.0\ncongest occupancy 2 0.5 0.1 0 1.0\nend\n"},
		{"congest overflow > 1", "chip a\nmodule m 1 1 1\nshape s 1 1 1\ncongest occupancy 2 0.5 1.5 0 1.0\nend\n"},
		{"congest rows < 1", "chip a\nmodule m 1 1 1\nshape s 1 1 1\ncongest occupancy 0 0.5 0.1 0 1.0\nend\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted malformed input", c.name)
		}
	}
}

func TestValidateDuplicateModule(t *testing.T) {
	d := sample()
	d.Modules = append(d.Modules, d.Modules[0])
	if err := Validate(d); err == nil {
		t.Fatal("duplicate module accepted")
	}
	d2 := sample()
	d2.Modules[0].Shapes[0].W = -1
	if err := Validate(d2); err == nil {
		t.Fatal("negative shape accepted")
	}
}

func TestValidateCongestionBounds(t *testing.T) {
	mut := []func(c *Congestion){
		func(c *Congestion) { c.Rows = 0 },
		func(c *Congestion) { c.PeakOverflow = -0.1 },
		func(c *Congestion) { c.PeakOverflow = 1.1 },
		func(c *Congestion) { c.PeakUtil = -1 },
		func(c *Congestion) { c.HotChannel = -2 },
	}
	for i, f := range mut {
		d := sample()
		f(d.Modules[0].Congestion)
		if err := Validate(d); err == nil {
			t.Errorf("mutation %d: invalid congestion record accepted", i)
		}
	}
}

func TestFromResult(t *testing.T) {
	p := tech.NMOS25()
	c, err := gen.Chain("mod", 12, p)
	if err != nil {
		t.Fatal(err)
	}
	// Assemble the estimate bundle from the core kernels directly:
	// this package sits below the engine (congest depends on db), so
	// the test cannot use engine.Estimate without an import cycle.
	s, err := netlist.Gather(c, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.SCOptions{Rows: 2}
	sc, err := core.EstimateStandardCell(s, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := core.SweepStandardCellShapes(s, p, opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	xt, err := cells.ExpandTransistors(c, p)
	if err != nil {
		t.Fatal(err)
	}
	fcExact, err := core.EstimateFullCustom(xt, p, core.FCExactAreas)
	if err != nil {
		t.Fatal(err)
	}
	fcAvg, err := core.EstimateFullCustom(xt, p, core.FCAverageAreas)
	if err != nil {
		t.Fatal(err)
	}
	res := &core.Result{
		Module: c.Name, Stats: s,
		SC: sc, SCCandidates: cands,
		FCExact: fcExact, FCAverage: fcAvg,
	}
	m := FromResult(res)
	if m.Name != "mod" || m.Devices != 12 {
		t.Fatalf("record = %+v", m)
	}
	// 5 SC candidates + 2 FC shapes.
	if len(m.Shapes) != 7 {
		t.Fatalf("shapes = %d, want 7", len(m.Shapes))
	}
	sawFC := false
	for _, s := range m.Shapes {
		if s.W <= 0 || s.H <= 0 {
			t.Fatalf("bad shape %+v", s)
		}
		if s.Label == "fc-exact" {
			sawFC = true
		}
	}
	if !sawFC {
		t.Fatal("missing fc-exact shape")
	}
	// The record must pass database validation inside a chip.
	d := &Database{Chip: "c", Modules: []Module{m}}
	if err := Validate(d); err != nil {
		t.Fatal(err)
	}
}
