package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"maest/internal/obs"
)

func decodeError(t *testing.T, w *httptest.ResponseRecorder) ErrorResponse {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatalf("bad error JSON: %v\n%s", err, w.Body.String())
	}
	return e
}

func TestTraceparentRootsFlightRecord(t *testing.T) {
	s := New(Options{FlightSize: 8})
	incoming := obs.NewTraceContext()
	req := httptest.NewRequest("POST", "/v1/estimate",
		strings.NewReader(marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})))
	req.Header.Set(obs.TraceparentHeader, incoming.Traceparent())
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Trace-Id"); got != incoming.TraceIDString() {
		t.Fatalf("X-Trace-Id %q, want incoming trace %q", got, incoming.TraceIDString())
	}
	recs := s.Flight().Snapshot()
	if len(recs) != 1 {
		t.Fatalf("flight records = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Trace != incoming.TraceIDString() {
		t.Fatalf("record trace %q, want %q", rec.Trace, incoming.TraceIDString())
	}
	if rec.ParentSpan != incoming.SpanIDString() {
		t.Fatalf("record parent span %q, want caller span %q", rec.ParentSpan, incoming.SpanIDString())
	}
	if rec.Span == "" || rec.Span == incoming.SpanIDString() {
		t.Fatalf("hop span %q must be fresh and non-empty", rec.Span)
	}
	if rec.AllocBytes <= 0 {
		t.Fatalf("alloc delta %d, want > 0 (an estimate allocates)", rec.AllocBytes)
	}
}

func TestMalformedTraceparentMintsRoot(t *testing.T) {
	s := New(Options{FlightSize: 8})
	req := httptest.NewRequest("POST", "/v1/estimate",
		strings.NewReader(marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})))
	req.Header.Set(obs.TraceparentHeader, "00-not-a-traceparent")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	rec := s.Flight().Snapshot()[0]
	if rec.Trace == "" || rec.ParentSpan != "" {
		t.Fatalf("malformed header must mint a parentless root, got %+v", rec)
	}
}

// TestErrorPathsCarryIDs covers every error status the service mints:
// the JSON body must carry the request and trace IDs so a failed
// request is findable in the access log and flight recorder.
func TestErrorPathsCarryIDs(t *testing.T) {
	checkIDs := func(t *testing.T, w *httptest.ResponseRecorder, wantStatus int) ErrorResponse {
		t.Helper()
		if w.Code != wantStatus {
			t.Fatalf("status %d, want %d (%s)", w.Code, wantStatus, w.Body.String())
		}
		e := decodeError(t, w)
		if e.Error == "" || e.RequestID == "" || e.TraceID == "" {
			t.Fatalf("error body missing correlation fields: %+v", e)
		}
		if e.RequestID != w.Header().Get("X-Request-Id") {
			t.Fatalf("body request id %q != header %q", e.RequestID, w.Header().Get("X-Request-Id"))
		}
		if e.TraceID != w.Header().Get("X-Trace-Id") {
			t.Fatalf("body trace id %q != header %q", e.TraceID, w.Header().Get("X-Trace-Id"))
		}
		return e
	}

	t.Run("400 bad JSON", func(t *testing.T) {
		s := New(Options{FlightSize: 8})
		checkIDs(t, do(s, "POST", "/v1/estimate", "{not json"), http.StatusBadRequest)
	})

	t.Run("413 oversized body", func(t *testing.T) {
		s := New(Options{FlightSize: 8, MaxRequestBytes: 16})
		checkIDs(t, do(s, "POST", "/v1/estimate",
			marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})),
			http.StatusRequestEntityTooLarge)
	})

	t.Run("422 unestimable circuit", func(t *testing.T) {
		s := New(Options{FlightSize: 8})
		checkIDs(t, do(s, "POST", "/v1/estimate",
			marshal(t, EstimateRequest{Netlist: "module m\ndevice g WARP a b\nend\n"})),
			http.StatusUnprocessableEntity)
	})

	t.Run("429 shed", func(t *testing.T) {
		acquired := make(chan struct{})
		gate := make(chan struct{})
		var once sync.Once
		s := New(Options{
			FlightSize:    8,
			MaxConcurrent: 1,
			EstimateHook: func() {
				once.Do(func() {
					close(acquired)
					<-gate
				})
			},
		})
		body := marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			do(s, "POST", "/v1/estimate", body)
		}()
		<-acquired
		checkIDs(t, do(s, "POST", "/v1/estimate", body), http.StatusTooManyRequests)
		close(gate)
		wg.Wait()
	})

	t.Run("504 deadline", func(t *testing.T) {
		s := New(Options{FlightSize: 8, Timeout: time.Nanosecond})
		checkIDs(t, do(s, "POST", "/v1/estimate",
			marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})),
			http.StatusGatewayTimeout)
	})

	t.Run("500 internal", func(t *testing.T) {
		// writeError's default branch, exercised directly: an error
		// matching no classification maps to 500 and still carries IDs.
		info := &reqInfo{id: "test-000001", trace: obs.NewTraceContext()}
		w := httptest.NewRecorder()
		writeError(w, info, errors.New("boom"))
		if w.Code != http.StatusInternalServerError {
			t.Fatalf("status %d, want 500", w.Code)
		}
		e := decodeError(t, w)
		if e.RequestID != "test-000001" || e.TraceID != info.trace.TraceIDString() {
			t.Fatalf("500 body missing IDs: %+v", e)
		}
		w = httptest.NewRecorder()
		writeError(w, info, errBadGateway)
		if w.Code != http.StatusBadGateway {
			t.Fatalf("status %d, want 502", w.Code)
		}
	})
}

// TestErrorPathsDisabledTelemetryOmitIDs pins the disabled contract:
// with no flight recorder and no access log, error bodies omit the
// correlation fields rather than inventing them.
func TestErrorPathsDisabledTelemetryOmitIDs(t *testing.T) {
	s := New(Options{})
	w := do(s, "POST", "/v1/estimate", "{not json")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	e := decodeError(t, w)
	if e.RequestID != "" || e.TraceID != "" {
		t.Fatalf("disabled telemetry must omit IDs: %+v", e)
	}
	if strings.Contains(w.Body.String(), "request_id") {
		t.Fatalf("omitempty fields serialized: %s", w.Body.String())
	}
}

func TestProxyStitchesTrace(t *testing.T) {
	backend := New(Options{FlightSize: 8})
	backendTS := httptest.NewServer(backend)
	defer backendTS.Close()

	front := New(Options{FlightSize: 8, Backend: backendTS.URL})
	client := obs.NewTraceContext()
	req := httptest.NewRequest("POST", "/v1/estimate",
		strings.NewReader(marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})))
	req.Header.Set(obs.TraceparentHeader, client.Traceparent())
	w := httptest.NewRecorder()
	front.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp EstimateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Module == "" {
		t.Fatalf("proxied answer broken: %v %s", err, w.Body.String())
	}

	frontRecs, backRecs := front.Flight().Snapshot(), backend.Flight().Snapshot()
	if len(frontRecs) != 1 || len(backRecs) != 1 {
		t.Fatalf("flight records front=%d back=%d, want 1/1", len(frontRecs), len(backRecs))
	}
	fr, br := frontRecs[0], backRecs[0]
	if fr.Trace != client.TraceIDString() || br.Trace != client.TraceIDString() {
		t.Fatalf("trace ids diverged: client %s front %s back %s",
			client.TraceIDString(), fr.Trace, br.Trace)
	}
	if fr.ParentSpan != client.SpanIDString() {
		t.Fatalf("front parent %s, want client span %s", fr.ParentSpan, client.SpanIDString())
	}
	if br.ParentSpan != fr.Span {
		t.Fatalf("back parent %s, want front span %s", br.ParentSpan, fr.Span)
	}
}

func TestProxyBackendDown(t *testing.T) {
	// A closed listener: the forward must answer 502 with a structured
	// body, not hang or 500.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	front := New(Options{FlightSize: 8, Backend: dead.URL, Timeout: time.Second})
	w := do(front, "POST", "/v1/estimate",
		marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")}))
	if w.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 (%s)", w.Code, w.Body.String())
	}
	e := decodeError(t, w)
	if e.RequestID == "" || e.TraceID == "" {
		t.Fatalf("502 body missing IDs: %+v", e)
	}
}

func TestProxyForwardsBackendErrors(t *testing.T) {
	backend := New(Options{})
	backendTS := httptest.NewServer(backend)
	defer backendTS.Close()
	front := New(Options{Backend: backendTS.URL})
	w := do(front, "POST", "/v1/estimate", "{not json")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want backend's 400 (%s)", w.Code, w.Body.String())
	}
}
