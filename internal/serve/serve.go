package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"maest/internal/congest"
	"maest/internal/core"
	"maest/internal/engine"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/store"
	"maest/internal/tech"
)

// Request metrics.  Rejections and timeouts get their own counters:
// under overload they are the difference between "the service is
// slow" and "the service is shedding load as designed".
var (
	mRequests  = obs.DefCounter("maest_serve_requests_total", "estimate requests received")
	mErrors    = obs.DefCounter("maest_serve_request_errors_total", "estimate requests answered with an error")
	mRejected  = obs.DefCounter("maest_serve_rejected_total", "estimate requests shed with 429 under overload")
	mTimeouts  = obs.DefCounter("maest_serve_timeouts_total", "estimate requests that exceeded their deadline")
	mInflight  = obs.DefGauge("maest_serve_inflight", "estimate requests currently holding a concurrency slot")
	mServeSec  = obs.DefHistogram("maest_serve_request_seconds", "estimate request latency", obs.DefBuckets)
	mBatchSize = obs.DefHistogram("maest_serve_batch_modules", "modules per batch request", obs.CountBuckets)
)

// Options configures a Server.  The zero value serves with sensible
// production defaults (nmos25, 1024-entry cache, 2×GOMAXPROCS
// concurrent estimates, 30 s deadline, 8 MiB request bodies).
type Options struct {
	// Process is the default built-in process for requests that do
	// not name one.  Empty means "nmos25".
	Process string
	// CacheSize is the result cache capacity in entries; 0 selects
	// 1024, negative disables caching.
	CacheSize int
	// MaxConcurrent bounds the estimate requests running at once;
	// excess requests are shed with 429.  0 selects 2×GOMAXPROCS.
	MaxConcurrent int
	// Timeout is the per-request estimation deadline; 0 selects 30 s.
	Timeout time.Duration
	// MaxRequestBytes bounds request bodies; 0 selects 8 MiB.
	MaxRequestBytes int64
	// Workers sizes the batch endpoint's default worker pool
	// (overridable per request); 0 selects GOMAXPROCS.
	Workers int
	// RetryAfter is the Retry-After hint, in seconds, sent with 429
	// responses when load is shed; 0 selects 1 s.  Operators running
	// aggressive floorplanner loops raise it to spread retry storms.
	RetryAfter int
	// JobWorkers bounds the floorplan jobs annealing at once; 0
	// selects 2.  Workers start lazily on the first submitted job.
	JobWorkers int
	// JobQueue is the pending floorplan job queue depth; submits
	// beyond it are shed with 429 and Retry-After.  0 selects 32.
	JobQueue int
	// EstimateHook, when non-nil, runs while a request holds its
	// concurrency slot, before estimation begins.  It exists so
	// end-to-end tests can hold a slot open deterministically; leave
	// nil in production.
	EstimateHook func()
	// FlightSize is the flight-recorder capacity: the number of recent
	// request records kept for the /debug/flight and /debug/slowest
	// observatory endpoints.  0 disables the recorder (the telemetry
	// adds nothing to the request path then).
	FlightSize int
	// AccessLog, when non-nil, receives one structured JSON line per
	// request (method, path, status, duration, request ID, cache hit).
	AccessLog io.Writer
	// Backend, when non-empty, turns the server into a forwarding hop:
	// the /v1/* endpoints proxy to this base URL (e.g.
	// "http://shard0:8080") instead of estimating locally, re-injecting
	// the W3C traceparent so the trace survives the extra hop.  This is
	// the maest-router building block; health, metrics, and the debug
	// observatory stay local.
	Backend string
	// Watchdog configures the accuracy watchdog; the zero value (or an
	// Interval of 0) disables it.
	Watchdog WatchdogOptions
	// Store, when non-nil, is the persistent plan store mounted as a
	// write-behind tier under the LRUs: an LRU miss probes the store
	// before paying compile+execute (a hit hydrates the LRU), and
	// computed results are persisted asynchronously.  The caller owns
	// the store's lifecycle; call Server.FlushStore before closing it.
	Store *store.Store
	// TraceStore, when non-nil, persists tail-sampled request traces
	// (write-behind, NSTrace namespace) and enables the /debug/trace*
	// and /debug/plans observatory endpoints.  It may be the same store
	// as Store or a dedicated one; the caller owns its lifecycle — call
	// Server.FlushTraces before closing it.
	TraceStore *store.Store
	// Sample is the tail-sampling policy deciding which traces reach
	// TraceStore.  The zero value selects the default (keep errors,
	// keep the ≥100 ms tail, 5% baseline).  Ignored without TraceStore.
	Sample obs.SamplePolicy
}

// withDefaults resolves the zero-value knobs.
func (o Options) withDefaults() Options {
	if o.Process == "" {
		o.Process = "nmos25"
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.MaxConcurrent == 0 {
		o.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if o.Timeout == 0 {
		o.Timeout = 30 * time.Second
	}
	if o.MaxRequestBytes == 0 {
		o.MaxRequestBytes = 8 << 20
	}
	if o.RetryAfter == 0 {
		o.RetryAfter = 1
	}
	if o.JobWorkers == 0 {
		o.JobWorkers = 2
	}
	if o.JobQueue == 0 {
		o.JobQueue = 32
	}
	return o
}

// Server is the estimation service.  It implements http.Handler:
//
//	POST   /v1/estimate        one circuit
//	POST   /v1/estimate/batch  a chip's worth of circuits
//	POST   /v1/estimate/delta  ECO edits against a cached plan
//	POST   /v1/congestion      one circuit's congestion map
//	POST   /v1/floorplan       submit an async floorplan job
//	GET    /v1/jobs/{id}       poll a floorplan job
//	DELETE /v1/jobs/{id}       cancel a floorplan job
//	GET    /healthz            liveness
//	GET    /metrics            Prometheus text exposition
//
// The health and metrics endpoints bypass the concurrency limiter so
// they stay responsive under overload.
type Server struct {
	opts     Options
	cache    *Cache
	congests *CongestCache
	plans    *PlanCache
	slots    chan struct{}
	mux      *http.ServeMux
	flight   *obs.Flight   // nil when the recorder is disabled
	access   *accessLogger // nil when access logging is disabled
	proxy    *http.Client  // non-nil only in Backend (forwarding) mode
	watchdog *Watchdog     // nil when the accuracy watchdog is disabled
	stier    *storeTier    // nil when the persistent store is disabled
	ttier    *traceTier    // nil when the trace store is disabled
	sampler  *obs.TailSampler
	profiles *planProfiles // nil when request telemetry is fully off
	jobs     *jobManager   // nil in Backend (forwarding) mode
}

// New returns a Server ready to mount on an http.Server.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	obs.RegisterBuildInfo()
	s := &Server{
		opts:     opts,
		cache:    NewCache(opts.CacheSize),
		congests: NewCongestCache(opts.CacheSize),
		plans:    NewPlanCache(opts.CacheSize),
		slots:    make(chan struct{}, opts.MaxConcurrent),
		mux:      http.NewServeMux(),
		flight:   obs.NewFlight(opts.FlightSize),
	}
	if opts.AccessLog != nil {
		s.access = newAccessLogger(opts.AccessLog)
	}
	if opts.Store != nil {
		s.stier = newStoreTier(opts.Store)
	}
	if opts.TraceStore != nil {
		pol := opts.Sample
		if pol == (obs.SamplePolicy{}) {
			pol = obs.SamplePolicy{Rate: 0.05, SlowMicros: 100_000, KeepErrors: true}
		}
		s.sampler = obs.NewTailSampler(pol)
		s.ttier = newTraceTier(opts.TraceStore)
	}
	if s.flight != nil || s.ttier != nil {
		s.profiles = newPlanProfiles(planProfileCap)
	}
	if opts.Backend != "" {
		s.proxy = &http.Client{Timeout: opts.Timeout}
		s.mux.HandleFunc("POST /v1/estimate", s.instrument("/v1/estimate", s.proxyTo("/v1/estimate")))
		s.mux.HandleFunc("POST /v1/estimate/batch", s.instrument("/v1/estimate/batch", s.proxyTo("/v1/estimate/batch")))
		s.mux.HandleFunc("POST /v1/estimate/delta", s.instrument("/v1/estimate/delta", s.proxyTo("/v1/estimate/delta")))
		s.mux.HandleFunc("POST /v1/congestion", s.instrument("/v1/congestion", s.proxyTo("/v1/congestion")))
		// Job endpoints forward verbatim: the job lives on the backend
		// shard, id and all, so GET and DELETE must preserve method
		// and path rather than re-POST.
		s.mux.HandleFunc("POST /v1/floorplan", s.instrument("/v1/floorplan", s.proxyPath()))
		s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs", s.proxyPath()))
		s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs", s.proxyPath()))
	} else {
		s.jobs = newJobManager(s, opts.JobWorkers, opts.JobQueue)
		s.mux.HandleFunc("POST /v1/estimate", s.instrument("/v1/estimate", s.handleEstimate))
		s.mux.HandleFunc("POST /v1/estimate/batch", s.instrument("/v1/estimate/batch", s.handleBatch))
		s.mux.HandleFunc("POST /v1/estimate/delta", s.instrument("/v1/estimate/delta", s.handleDelta))
		s.mux.HandleFunc("POST /v1/congestion", s.instrument("/v1/congestion", s.handleCongestion))
		s.mux.HandleFunc("POST /v1/floorplan", s.instrument("/v1/floorplan", s.handleFloorplan))
		s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("/v1/jobs", s.handleJobGet))
		s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs", s.handleJobCancel))
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opts.Watchdog.Interval > 0 {
		s.watchdog = newWatchdog(s, opts.Watchdog)
	}
	return s
}

// Watchdog returns the server's accuracy watchdog (nil when disabled).
func (s *Server) Watchdog() *Watchdog { return s.watchdog }

// ServeHTTP dispatches to the service routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Cache returns the server's result cache (nil when disabled).
func (s *Server) Cache() *Cache { return s.cache }

// CongestCache returns the congestion map cache (nil when disabled).
func (s *Server) CongestCache() *CongestCache { return s.congests }

// PlanCache returns the compiled-plan cache (nil when disabled).
func (s *Server) PlanCache() *PlanCache { return s.plans }

// plan returns the compiled plan for one circuit + process pair,
// probing the plan cache by content address before paying for
// compilation.  Every endpoint resolves plans here, which is what
// makes an estimate followed by a congestion question on the same
// body share one parse/gather.
func (s *Server) plan(ctx context.Context, circ *netlist.Circuit, proc *tech.Process) (*engine.Plan, error) {
	return s.planWithKey(ctx, Key(engine.PlanHash(circ, proc)), circ, proc)
}

// planWithKey is plan with the content address already computed —
// handlers that also answer the plan key to the client avoid hashing
// the circuit twice.
func (s *Server) planWithKey(ctx context.Context, k Key, circ *netlist.Circuit, proc *tech.Process) (*engine.Plan, error) {
	if pl, ok := s.plans.Get(k); ok {
		return pl, nil
	}
	pl, err := engine.CompileCtx(ctx, circ, proc)
	if err != nil {
		return nil, err
	}
	s.plans.Put(k, pl)
	s.stier.putPlanMeta(k, pl)
	return pl, nil
}

// StoreStats snapshots the persistent store (ok=false when disabled).
func (s *Server) StoreStats() (store.Stats, bool) {
	return s.stier.stats()
}

// TraceStats snapshots the trace tier's counters (ok=false when no
// trace store is mounted).
func (s *Server) TraceStats() (TraceTierStats, bool) {
	return s.ttier.tierStats()
}

// Sampler returns the server's tail sampler (nil when no trace store
// is mounted).
func (s *Server) Sampler() *obs.TailSampler { return s.sampler }

// FlushStore drains the floorplan job pool and the write-behind queue
// so every result computed so far is persisted.  Call during shutdown,
// after the HTTP listener has drained and before closing the store.
// In-flight floorplan jobs are cancelled, marked cancelled in the
// store, and their worker goroutines joined — no job goroutine
// survives this call.  Safe to call more than once, and a no-op when
// no store is configured (the job pool still drains).
func (s *Server) FlushStore() {
	s.jobs.drain()
	s.stier.flush()
}

// FlushTraces drains the trace tier's write-behind queue and stops
// intake.  Call during shutdown, before closing the trace store.  Safe
// to call more than once, and a no-op when no trace store is mounted.
func (s *Server) FlushTraces() {
	s.ttier.flush()
}

// SyncTraces blocks until every trace sampled so far has been
// persisted, without stopping intake — the deterministic settling
// point tests use before asserting on the trace store.  A no-op when
// no trace store is mounted.
func (s *Server) SyncTraces() {
	s.ttier.sync()
}

// storeResult probes the persistent store for an LRU miss and, on a
// hit, hydrates the LRU so the next repeat is a memory hit.
func (s *Server) storeResult(key Key, info *reqInfo) (*core.Result, bool) {
	if s.stier == nil {
		return nil, false
	}
	res, ok := s.stier.getResult(key)
	if ok {
		s.cache.Put(key, res)
		info.setStoreHit(true)
	}
	info.mark("store")
	return res, ok
}

// Flight returns the server's flight recorder (nil when disabled).
func (s *Server) Flight() *obs.Flight { return s.flight }

// acquire claims a concurrency slot without blocking; callers that
// fail to acquire must answer 429.
func (s *Server) acquire() bool {
	select {
	case s.slots <- struct{}{}:
		mInflight.Add(1)
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	<-s.slots
	mInflight.Add(-1)
}

// writeJSON answers with a JSON body; encoding failures are already
// committed (headers sent) so they are deliberately dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeError maps an error to its HTTP status and JSON body.  The
// body carries the request and trace IDs (when telemetry is enabled)
// so the client of a failed request can quote the identifiers that
// find it in the access log and flight recorder.
func writeError(w http.ResponseWriter, info *reqInfo, err error) {
	mErrors.Inc()
	status := http.StatusInternalServerError
	var maxErr *http.MaxBytesError
	switch {
	case errors.As(err, &maxErr):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, errBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, core.ErrEstimate),
		errors.Is(err, congest.ErrCongest),
		errors.Is(err, netlist.ErrInvalidCircuit):
		// The request was well-formed but the circuit cannot be
		// estimated (unknown device, mixed methodologies, …).
		status = http.StatusUnprocessableEntity
	case errors.Is(err, errUnknownParent), errors.Is(err, errUnknownJob):
		// The named parent plan aged out of the plan cache (or belongs
		// to another shard), or the polled job id is known neither in
		// memory nor on disk.  The client's defined fallback for a
		// missing parent is a full /v1/estimate, whose answer mints a
		// fresh plan key; for a missing job it is a resubmit.
		status = http.StatusNotFound
	case errors.Is(err, errBadGateway):
		status = http.StatusBadGateway
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		mTimeouts.Inc()
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, ErrorResponse{
		Error:     err.Error(),
		RequestID: info.requestID(),
		TraceID:   info.traceID(),
	})
}

// reject sheds one request with 429 and the configured Retry-After
// hint.
func (s *Server) reject(w http.ResponseWriter, info *reqInfo) {
	mRejected.Inc()
	info.fail(errors.New("serve: concurrency limit reached"))
	w.Header().Set("Retry-After", strconv.Itoa(s.opts.RetryAfter))
	writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
		Error:     "serve: concurrency limit reached, retry later",
		RequestID: info.requestID(),
		TraceID:   info.traceID(),
	})
}

// fail records the outcome on the request's telemetry and renders the
// error response — the handlers' single error exit.
func (s *Server) fail(w http.ResponseWriter, info *reqInfo, err error) {
	info.fail(err)
	writeError(w, info, err)
}

// handleEstimate answers POST /v1/estimate: decode → cache → estimate
// → encode, the Fig. 1 flow as a request/response pipeline.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request, info *reqInfo) {
	if !s.acquire() {
		s.reject(w, info)
		return
	}
	defer s.release()
	if s.opts.EstimateHook != nil {
		s.opts.EstimateHook()
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()

	var req EstimateRequest
	if err := decodeJSON(http.MaxBytesReader(w, r.Body, s.opts.MaxRequestBytes), &req); err != nil {
		s.fail(w, info, err)
		return
	}
	info.mark("decode")
	proc, procName, err := lookupProcess(req.Process, s.opts.Process)
	if err != nil {
		s.fail(w, info, err)
		return
	}
	circ, err := parseCircuit(req.Format, req.Name, req.Netlist, proc)
	if err != nil {
		s.fail(w, info, err)
		return
	}
	info.mark("parse")
	opts := core.SCOptions{Rows: req.Rows, TrackSharing: req.TrackSharing}
	key := CacheKey(circ, procName, opts)
	planKey := Key(engine.PlanHash(circ, proc))
	info.setDigest(key)
	info.setPlan(planKey)
	if res, ok := s.cache.Get(key); ok {
		info.setCacheHit(true)
		info.mark("cache")
		resp := encodeResult(res, procName, key, true)
		resp.Plan = planKey.String()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	info.mark("cache")
	if res, ok := s.storeResult(key, info); ok {
		// A disk hit is a cache hit as far as the client is concerned:
		// the answer is the persisted computation, byte-identical to a
		// fresh one.  The plan is still compiled (memoized) so the
		// answer's plan key stays chainable — a warm restart serves
		// results this process never computed, and an ECO delta
		// against them must find the parent plan, not a 404.
		if _, err := s.planWithKey(ctx, planKey, circ, proc); err != nil {
			s.fail(w, info, err)
			return
		}
		info.mark("compile")
		info.setCacheHit(true)
		resp := encodeResult(res, procName, key, true)
		resp.Plan = planKey.String()
		writeJSON(w, http.StatusOK, resp)
		return
	}

	pl, err := s.planWithKey(ctx, planKey, circ, proc)
	if err != nil {
		s.fail(w, info, err)
		return
	}
	info.mark("compile")
	res, err := s.estimateWithDeadline(ctx, pl, opts, key)
	if err != nil {
		s.fail(w, info, err)
		return
	}
	info.mark("estimate")
	resp := encodeResult(res, procName, key, false)
	resp.Plan = planKey.String()
	writeJSON(w, http.StatusOK, resp)
}

// handleDelta answers POST /v1/estimate/delta: the ECO loop's fast
// path.  The request names a previously compiled plan by content
// address and carries a typed edit script; the engine's incremental
// Delta route produces the child plan — bit-identical to recompiling
// the edited netlist — and the answer is cached under the same key a
// full /v1/estimate of the edited circuit would use, so the two routes
// share cache entries in both directions.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request, info *reqInfo) {
	if !s.acquire() {
		s.reject(w, info)
		return
	}
	defer s.release()
	if s.opts.EstimateHook != nil {
		s.opts.EstimateHook()
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()

	var req DeltaRequest
	if err := decodeJSON(http.MaxBytesReader(w, r.Body, s.opts.MaxRequestBytes), &req); err != nil {
		s.fail(w, info, err)
		return
	}
	info.mark("decode")
	parentKey, err := parseKey(req.Parent)
	if err != nil {
		s.fail(w, info, err)
		return
	}
	edits, err := decodeEdits(req.Edits)
	if err != nil {
		s.fail(w, info, err)
		return
	}
	parent, ok := s.plans.Get(parentKey)
	if !ok {
		s.fail(w, info, fmt.Errorf("%w: %s", errUnknownParent, req.Parent))
		return
	}
	child, err := parent.DeltaCtx(ctx, edits...)
	if err != nil {
		s.fail(w, info, err)
		return
	}
	childKey := Key(child.Hash())
	if childKey != parentKey {
		// A rows-only script keeps the parent's content address (rows
		// are an execute knob, not plan identity); storing that child
		// would replace the parent with one carrying a hidden row
		// default.  The plan cache only ever maps a key to the plain
		// compile of that content.
		s.plans.Put(childKey, child)
	}
	info.mark("delta")

	// The child's process name came through the plan (the parent's, or
	// the swap_process target); its row default came through any
	// resize_rows edit.  Folding both into the result key is what makes
	// a delta answer and a full estimate of the same edited circuit the
	// same cache entry — and keeps a resized child from colliding with
	// the same circuit at §5 automatic rows.
	procName := child.Process().Name
	rows := req.Rows
	if rows == 0 {
		rows = child.DefaultRows()
	}
	opts := core.SCOptions{Rows: rows, TrackSharing: req.TrackSharing}
	key := CacheKey(child.Circuit(), procName, opts)
	info.setDigest(key)
	info.setPlan(childKey)
	if res, ok := s.cache.Get(key); ok {
		info.setCacheHit(true)
		info.mark("cache")
		resp := encodeResult(res, procName, key, true)
		resp.Plan = childKey.String()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	info.mark("cache")
	if res, ok := s.storeResult(key, info); ok {
		info.setCacheHit(true)
		resp := encodeResult(res, procName, key, true)
		resp.Plan = childKey.String()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	res, err := s.estimateWithDeadline(ctx, child, opts, key)
	if err != nil {
		s.fail(w, info, err)
		return
	}
	info.mark("estimate")
	resp := encodeResult(res, procName, key, false)
	resp.Plan = childKey.String()
	writeJSON(w, http.StatusOK, resp)
}

// estimateWithDeadline runs one estimate against a compiled plan,
// honoring ctx.  The estimator itself is not preemptible, so on
// timeout the answer is 504 while the computation finishes on its
// goroutine and still populates the cache — an immediate retry of the
// same request becomes a hit.
func (s *Server) estimateWithDeadline(ctx context.Context, pl *engine.Plan, opts core.SCOptions, key Key) (*core.Result, error) {
	type outcome struct {
		res *core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := pl.Estimate(ctx, engine.WithRows(opts.Rows), engine.WithTrackSharing(opts.TrackSharing))
		if err == nil {
			s.cache.Put(key, res)
			s.stier.putResult(key, res)
		}
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// handleBatch answers POST /v1/estimate/batch: cache-check every
// module, fan the misses out through the EstimateChipCtx worker pool,
// and merge, preserving request order.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, info *reqInfo) {
	if !s.acquire() {
		s.reject(w, info)
		return
	}
	defer s.release()
	if s.opts.EstimateHook != nil {
		s.opts.EstimateHook()
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()

	var req BatchRequest
	if err := decodeJSON(http.MaxBytesReader(w, r.Body, s.opts.MaxRequestBytes), &req); err != nil {
		s.fail(w, info, err)
		return
	}
	info.mark("decode")
	if len(req.Modules) == 0 {
		s.fail(w, info, reqErr("batch has no modules"))
		return
	}
	mBatchSize.Observe(float64(len(req.Modules)))
	proc, procName, err := lookupProcess(req.Process, s.opts.Process)
	if err != nil {
		s.fail(w, info, err)
		return
	}
	opts := core.SCOptions{Rows: req.Rows, TrackSharing: req.TrackSharing}

	keys := make([]Key, len(req.Modules))
	results := make([]*core.Result, len(req.Modules))
	cached := make([]bool, len(req.Modules))
	hits := 0
	var missPlans []*engine.Plan
	var missIdx []int
	for i, m := range req.Modules {
		c, err := parseCircuit(m.Format, m.Name, m.Netlist, proc)
		if err != nil {
			s.fail(w, info, reqErr("module %d: %v", i, err))
			return
		}
		keys[i] = CacheKey(c, procName, opts)
		if res, ok := s.cache.Get(keys[i]); ok {
			results[i] = res
			cached[i] = true
			hits++
		} else if res, ok := s.stier.getResult(keys[i]); ok {
			// Store hits hydrate the LRU and count as cached modules:
			// the disk tier is part of the cache from the wire's view.
			s.cache.Put(keys[i], res)
			results[i] = res
			cached[i] = true
			hits++
		} else {
			pl, err := s.plan(ctx, c, proc)
			if err != nil {
				s.fail(w, info, err)
				return
			}
			missPlans = append(missPlans, pl)
			missIdx = append(missIdx, i)
		}
	}
	// A batch is recorded as a hit when every module came from cache;
	// its digest is the first module's key (the batch itself has no
	// single content address).
	info.setCacheHit(hits == len(req.Modules))
	info.setDigest(keys[0])
	info.mark("parse+cache")

	if len(missPlans) > 0 {
		workers := req.Workers
		if workers <= 0 {
			workers = s.opts.Workers
		}
		fresh, err := engine.EstimatePlans(ctx, missPlans,
			engine.WithRows(opts.Rows), engine.WithTrackSharing(opts.TrackSharing), engine.WithWorkers(workers))
		if err != nil {
			s.fail(w, info, err)
			return
		}
		for j, res := range fresh {
			i := missIdx[j]
			results[i] = res
			s.cache.Put(keys[i], res)
			s.stier.putResult(keys[i], res)
		}
	}
	info.mark("estimate")

	resp := BatchResponse{Process: procName, CacheHits: hits}
	for i, res := range results {
		resp.Modules = append(resp.Modules, encodeResult(res, procName, keys[i], cached[i]))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCongestion answers POST /v1/congestion: decode → cache →
// analyze → encode.  The congestion map is deterministic in the
// request content, so answers are cached under the same
// content-addressed key scheme as estimates (CongestKey folds in the
// analysis knobs the estimate key does not have).
func (s *Server) handleCongestion(w http.ResponseWriter, r *http.Request, info *reqInfo) {
	if !s.acquire() {
		s.reject(w, info)
		return
	}
	defer s.release()
	if s.opts.EstimateHook != nil {
		s.opts.EstimateHook()
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()

	var req CongestionRequest
	if err := decodeJSON(http.MaxBytesReader(w, r.Body, s.opts.MaxRequestBytes), &req); err != nil {
		s.fail(w, info, err)
		return
	}
	info.mark("decode")
	model, err := congest.ParseModel(req.Model)
	if err != nil {
		s.fail(w, info, reqErr("%v", err))
		return
	}
	if req.Rows < 0 {
		s.fail(w, info, reqErr("negative rows %d", req.Rows))
		return
	}
	proc, procName, err := lookupProcess(req.Process, s.opts.Process)
	if err != nil {
		s.fail(w, info, err)
		return
	}
	circ, err := parseCircuit(req.Format, req.Name, req.Netlist, proc)
	if err != nil {
		s.fail(w, info, err)
		return
	}
	// The compiled plan supplies the gathered statistics (shared with
	// any earlier /v1/estimate on the same body via the plan cache)
	// and the resolved row count the cache key names: §5 automatic
	// rows for standard cells, the ⌈√N⌉ grid for full custom.
	planKey := Key(engine.PlanHash(circ, proc))
	info.setPlan(planKey)
	pl, err := s.planWithKey(ctx, planKey, circ, proc)
	if err != nil {
		s.fail(w, info, err)
		return
	}
	info.mark("parse")
	rows := req.Rows
	if rows == 0 {
		if req.Gridded {
			rows = congest.GridRows(pl.Stats())
		} else {
			rows = pl.InitialRows()
		}
	}
	opts := congest.Options{Model: model, Capacity: req.Capacity, FeedBudget: req.FeedBudget}
	key := CongestKey(circ, procName, rows, req.Gridded, opts)
	info.setDigest(key)
	if m, ok := s.congests.Get(key); ok {
		info.setCacheHit(true)
		info.mark("cache")
		writeJSON(w, http.StatusOK, encodeMap(m, procName, key, true))
		return
	}
	info.mark("cache")
	if s.stier != nil {
		if m, ok := s.stier.getCongest(key); ok {
			s.congests.Put(key, m)
			info.setCacheHit(true)
			info.setStoreHit(true)
			info.mark("store")
			writeJSON(w, http.StatusOK, encodeMap(m, procName, key, true))
			return
		}
		info.mark("store")
	}

	m, err := pl.Congestion(ctx,
		engine.WithRows(rows), engine.WithGridded(req.Gridded), engine.WithCongestModel(model),
		engine.WithCapacity(req.Capacity), engine.WithFeedBudget(req.FeedBudget))
	if err != nil {
		s.fail(w, info, err)
		return
	}
	info.mark("analyze")
	s.congests.Put(key, m)
	s.stier.putCongest(key, m)
	writeJSON(w, http.StatusOK, encodeMap(m, procName, key, false))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{Status: "ok"}
	status := http.StatusOK
	if wd := s.watchdog; wd != nil {
		h := wd.Health()
		resp.Watchdog = &h
		if h.Degraded {
			// Degraded accuracy is a health failure: a load balancer
			// should stop routing floorplanner traffic to a shard whose
			// estimates have drifted off the golden set.
			resp.Status = "degraded"
			status = http.StatusServiceUnavailable
		}
	}
	if st, ok := s.StoreStats(); ok {
		// A degraded store (corrupt records detected and skipped) does
		// NOT fail health: answers stay correct — bad records degrade
		// to recomputes — so the service keeps taking traffic while the
		// store block tells operators the disk lied.
		resp.Store = storeHealth(st)
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obs.Default.WritePrometheus(w)
}
