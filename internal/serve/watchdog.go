package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"maest/internal/engine"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/report"
	"maest/internal/tech"
)

// The accuracy watchdog turns maest-bench's offline drift gate into a
// production signal: a background loop that periodically replays the
// pinned golden circuit set (the paper's Table 1/2 experiments)
// through the server's live plan cache, diffs the fresh accuracy
// snapshot against the checked-in bench reference, and degrades
// /healthz when any module's drift from golden grows beyond tolerance.
// An estimator that silently starts answering floorplanner loops with
// drifted areas is a worse failure than one that is down — a load
// balancer can only act on the signal if /healthz carries it.

var (
	mWatchdogProbes    = obs.DefCounter("maest_serve_watchdog_probes_total", "accuracy watchdog probes run")
	mWatchdogErrors    = obs.DefCounter("maest_serve_watchdog_probe_errors_total", "accuracy watchdog probes that failed to run")
	mWatchdogSec       = obs.DefHistogram("maest_serve_watchdog_probe_seconds", "accuracy watchdog probe duration", obs.DefBuckets)
	mAccuracyDriftPP   = obs.DefGauge("maest_serve_accuracy_drift_pp", "largest per-module drift from the golden tables, percentage points")
	mAccuracyDegraded  = obs.DefGauge("maest_serve_accuracy_degraded", "1 when accuracy drift exceeds tolerance, else 0")
	mAccuracyRegressed = obs.DefGauge("maest_serve_accuracy_regressions", "modules currently drifted beyond tolerance vs the bench reference")
)

// WatchdogOptions configures the accuracy watchdog.
type WatchdogOptions struct {
	// Interval is the probe period; 0 disables the watchdog.
	Interval time.Duration
	// GoldenDir holds the golden tables (testdata/golden).
	GoldenDir string
	// Reference is the path of the pinned bench snapshot
	// (testdata/bench/BENCH_reference.json) probes are diffed against.
	Reference string
	// TolPP is the allowed drift growth beyond the reference, in
	// percentage points (the same knob as maest-bench -tol).
	TolPP float64
	// Seed drives the layout synthesis the goldens are anchored to; it
	// must match the seed the reference snapshot was built with.
	Seed int64
}

// watchdogState is one probe's outcome, swapped in atomically so
// /healthz reads are lock-free.
type watchdogState struct {
	degraded    bool
	maxDriftPP  float64
	regressions []string
	lastErr     string
}

// Watchdog is the background accuracy prober.  A nil *Watchdog is the
// disabled state.
type Watchdog struct {
	s    *Server
	opts WatchdogOptions

	refMu sync.Mutex
	ref   *report.BenchSnapshot

	state atomic.Pointer[watchdogState]

	probes      atomic.Int64
	probeErrors atomic.Int64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

func newWatchdog(s *Server, opts WatchdogOptions) *Watchdog {
	wd := &Watchdog{
		s:    s,
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	wd.state.Store(&watchdogState{})
	return wd
}

// Start launches the probe loop (one immediate probe, then one per
// interval).  Starting twice, or starting a nil watchdog, is a no-op.
func (wd *Watchdog) Start() {
	if wd == nil {
		return
	}
	wd.startOnce.Do(func() {
		go func() {
			defer close(wd.done)
			wd.Probe(context.Background())
			t := time.NewTicker(wd.opts.Interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					wd.Probe(context.Background())
				case <-wd.stop:
					return
				}
			}
		}()
	})
}

// Stop ends the probe loop and waits for it to exit.
func (wd *Watchdog) Stop() {
	if wd == nil {
		return
	}
	wd.startOnce.Do(func() { close(wd.done) }) // never started
	wd.stopOnce.Do(func() { close(wd.stop) })
	<-wd.done
}

// Probe runs one accuracy check synchronously: replay the golden set
// through the live plan cache, diff against the reference, publish
// gauges, and update the /healthz state.  A probe that cannot run
// (missing reference, compile failure) counts as an error and marks
// the service degraded — "cannot verify accuracy" must not read as
// healthy.  It returns the regression messages (nil when clean).
func (wd *Watchdog) Probe(ctx context.Context) []string {
	if wd == nil {
		return nil
	}
	t0 := time.Now()
	mWatchdogProbes.Inc()
	wd.probes.Add(1)
	regressions, maxDrift, err := wd.probe(ctx)
	mWatchdogSec.Observe(time.Since(t0).Seconds())

	st := &watchdogState{maxDriftPP: maxDrift, regressions: regressions}
	if err != nil {
		mWatchdogErrors.Inc()
		wd.probeErrors.Add(1)
		st.lastErr = err.Error()
		st.degraded = true
	} else if len(regressions) > 0 {
		st.degraded = true
	}
	wd.state.Store(st)

	mAccuracyDriftPP.Set(maxDrift)
	mAccuracyRegressed.Set(float64(len(regressions)))
	if st.degraded {
		mAccuracyDegraded.Set(1)
	} else {
		mAccuracyDegraded.Set(0)
	}
	return regressions
}

func (wd *Watchdog) probe(ctx context.Context) ([]string, float64, error) {
	ref, err := wd.reference()
	if err != nil {
		return nil, 0, err
	}
	proc, err := tech.Lookup(ref.Accuracy.Process)
	if err != nil {
		return nil, 0, fmt.Errorf("watchdog: reference process: %w", err)
	}
	seed := wd.opts.Seed
	if seed == 0 {
		seed = ref.Accuracy.Seed
	}
	// The probe compiles through s.plan: every golden circuit resolves
	// via — and warms — the same content-addressed plan cache serving
	// production requests, so the watchdog measures the deployed
	// pipeline, not a parallel one.
	compile := func(ctx context.Context, c *netlist.Circuit, p *tech.Process) (*engine.Plan, error) {
		return wd.s.plan(ctx, c, p)
	}
	fresh, err := report.BuildAccuracyCtx(ctx, wd.opts.GoldenDir, proc, seed, compile)
	if err != nil {
		return nil, 0, fmt.Errorf("watchdog: probe: %w", err)
	}
	return report.CompareAccuracy(&ref.Accuracy, &fresh, wd.opts.TolPP), fresh.MaxDriftPP, nil
}

// reference lazily loads and caches the pinned bench snapshot.
func (wd *Watchdog) reference() (*report.BenchSnapshot, error) {
	wd.refMu.Lock()
	defer wd.refMu.Unlock()
	if wd.ref != nil {
		return wd.ref, nil
	}
	ref, err := report.ReadBenchSnapshot(wd.opts.Reference)
	if err != nil {
		return nil, fmt.Errorf("watchdog: reference: %w", err)
	}
	wd.ref = ref
	return ref, nil
}

// Health returns the watchdog's current /healthz view.
func (wd *Watchdog) Health() WatchdogHealth {
	if wd == nil {
		return WatchdogHealth{}
	}
	st := wd.state.Load()
	return WatchdogHealth{
		Degraded:    st.degraded,
		Probes:      wd.probes.Load(),
		ProbeErrors: wd.probeErrors.Load(),
		MaxDriftPP:  st.maxDriftPP,
		Regressions: len(st.regressions),
		LastError:   st.lastErr,
	}
}

// Degraded reports whether the last probe found the service out of
// accuracy tolerance (or failed to verify it).
func (wd *Watchdog) Degraded() bool {
	if wd == nil {
		return false
	}
	return wd.state.Load().degraded
}
