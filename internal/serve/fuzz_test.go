package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fuzzSeed JSON-wraps a netlist file the way a well-formed client
// would, so the corpus starts from real requests.
func fuzzSeed(f *testing.F, format, file string) {
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", file))
	if err != nil {
		f.Fatal(err)
	}
	req, err := json.Marshal(EstimateRequest{Format: format, Name: "fz", Netlist: string(b)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(req))
}

// FuzzEstimateDecoder drives arbitrary bodies through the full
// request path (decode → parse → estimate → encode).  Malformed JSON
// and malformed netlists must answer 4xx; nothing may panic or 5xx.
func FuzzEstimateDecoder(f *testing.F) {
	fuzzSeed(f, "mnet", "demo.mnet")
	fuzzSeed(f, "mnet", "ladder.mnet")
	fuzzSeed(f, "bench", "c17.bench")
	fuzzSeed(f, "bench", "rand180.bench")
	fuzzSeed(f, "verilog", "fa.v")
	f.Add("")
	f.Add("{")
	f.Add(`{"netlist":"module m\nend\n"}`)
	f.Add(`{"format":"bench","netlist":"INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n"}`)
	f.Add(`{"netlist":"module m\ndevice g INV a y\nend\n","process":"nope"}`)
	f.Add(`{"netlist":"module m\ndevice g INV a y\nend\n","rows":-3}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"netlist":"module m\ndevice g INV a y\nend\n"} trailing`)

	s := New(Options{CacheSize: 64})
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/estimate", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req) // must not panic
		switch {
		case w.Code == http.StatusOK:
			var resp EstimateResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 with unparsable body: %v", err)
			}
			if resp.Module == "" || resp.FCExact == nil {
				t.Fatalf("200 with incomplete estimate: %s", w.Body.String())
			}
		case w.Code >= 400 && w.Code < 500:
			var e ErrorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("%d without a JSON error body: %s", w.Code, w.Body.String())
			}
		default:
			t.Fatalf("unexpected status %d: %s", w.Code, w.Body.String())
		}
	})
}

// FuzzBatchDecoder does the same for the batch endpoint, with the
// module list itself under fuzz control.
func FuzzBatchDecoder(f *testing.F) {
	demo, err := os.ReadFile(filepath.Join("..", "..", "testdata", "demo.mnet"))
	if err != nil {
		f.Fatal(err)
	}
	seed, err := json.Marshal(BatchRequest{Modules: []ModuleInput{
		{Netlist: string(demo)},
		{Format: "bench", Name: "fz", Netlist: "INPUT(a)\ny = NOT(a)\nOUTPUT(y)\n"},
	}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add(`{"modules":[]}`)
	f.Add(`{"modules":[{"netlist":""}]}`)
	f.Add(fmt.Sprintf(`{"workers":-2,"modules":[{"netlist":%q}]}`, string(demo)))
	f.Add(`{"modules":"nope"}`)

	s := New(Options{CacheSize: 64})
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/estimate/batch", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req) // must not panic
		if w.Code != http.StatusOK && (w.Code < 400 || w.Code >= 500) {
			t.Fatalf("unexpected status %d: %s", w.Code, w.Body.String())
		}
	})
}
