package serve

import (
	"net/http"
	"strconv"

	"maest/internal/obs"
	"maest/internal/store"
)

// The observatory debug surface.  It is a separate handler (not part
// of ServeHTTP) so operators mount it on a loopback-only listener
// (`maest-serve -debug-addr`) and never expose request payloads or
// digests on the service port.

// FlightResponse answers GET /debug/flight.
type FlightResponse struct {
	Enabled  bool `json:"enabled"`
	Capacity int  `json:"capacity"`
	// Total counts every request ever recorded; Total - len(Requests)
	// is how much history the ring has dropped.
	Total    uint64             `json:"total"`
	Requests []obs.FlightRecord `json:"requests"` // newest first
	Latency  []EndpointLatency  `json:"latency"`
}

// SlowestResponse answers GET /debug/slowest.
type SlowestResponse struct {
	Enabled  bool               `json:"enabled"`
	Requests []obs.FlightRecord `json:"requests"` // slowest first
}

// DebugStoreResponse answers GET /debug/store: the persistent store's
// full statistics snapshot (the /healthz block is the abridged form).
type DebugStoreResponse struct {
	Enabled bool         `json:"enabled"`
	Stats   *store.Stats `json:"stats,omitempty"`
}

// DebugHandler returns the observatory endpoints:
//
//	GET /debug/flight?n=N   the last N (default all resident) request
//	                        records, newest first, plus per-endpoint
//	                        latency quantiles
//	GET /debug/slowest?k=K  the top K (default 10) resident requests
//	                        by duration, with span breakdowns
//	GET /debug/store        the persistent store's statistics snapshot
//	GET /metrics            Prometheus text exposition (convenience,
//	                        so one debug listener serves everything)
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/flight", s.handleDebugFlight)
	mux.HandleFunc("GET /debug/slowest", s.handleDebugSlowest)
	mux.HandleFunc("GET /debug/store", s.handleDebugStore)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleDebugStore(w http.ResponseWriter, r *http.Request) {
	resp := DebugStoreResponse{}
	if st, ok := s.StoreStats(); ok {
		resp.Enabled = true
		resp.Stats = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// storeHealth condenses a store snapshot into its /healthz block.
func storeHealth(st store.Stats) *StoreHealth {
	h := &StoreHealth{
		Status:             "ok",
		Segments:           st.Segments,
		Bytes:              st.Bytes,
		Records:            st.Records,
		Hits:               st.Hits,
		Misses:             st.Misses,
		Compactions:        st.Compactions,
		LastCompactionUnix: st.LastCompactionUnix,
	}
	if st.Degraded {
		h.Status = "degraded"
	}
	return h
}

// queryInt parses a positive integer query parameter, falling back to
// def when absent or malformed.
func queryInt(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return def
	}
	return n
}

func (s *Server) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	resp := FlightResponse{
		Enabled:  s.flight != nil,
		Capacity: s.flight.Cap(),
		Total:    s.flight.Total(),
		Latency:  LatencySummary(),
	}
	recs := s.flight.Snapshot()
	// Newest first: the page answers "what just happened".
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
	if n := queryInt(r, "n", len(recs)); n < len(recs) {
		recs = recs[:n]
	}
	resp.Requests = recs
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDebugSlowest(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SlowestResponse{
		Enabled:  s.flight != nil,
		Requests: s.flight.Slowest(queryInt(r, "k", 10)),
	})
}
