package serve

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"maest/internal/obs"
	"maest/internal/store"
)

// The observatory debug surface.  It is a separate handler (not part
// of ServeHTTP) so operators mount it on a loopback-only listener
// (`maest-serve -debug-addr`) and never expose request payloads or
// digests on the service port.

// FlightResponse answers GET /debug/flight.
type FlightResponse struct {
	Enabled  bool `json:"enabled"`
	Capacity int  `json:"capacity"`
	// Total counts every request ever recorded; Total - len(Requests)
	// is how much history the ring has dropped.
	Total    uint64             `json:"total"`
	Requests []obs.FlightRecord `json:"requests"` // newest first
	Latency  []EndpointLatency  `json:"latency"`
}

// SlowestResponse answers GET /debug/slowest.
type SlowestResponse struct {
	Enabled  bool               `json:"enabled"`
	Requests []obs.FlightRecord `json:"requests"` // slowest first
}

// DebugStoreResponse answers GET /debug/store: the persistent store's
// full statistics snapshot (the /healthz block is the abridged form).
type DebugStoreResponse struct {
	Enabled bool         `json:"enabled"`
	Stats   *store.Stats `json:"stats,omitempty"`
}

// DebugHandler returns the observatory endpoints:
//
//	GET /debug/flight?n=N    the last N (default all resident) request
//	                         records, newest first, plus per-endpoint
//	                         latency quantiles (with bucket exemplars)
//	GET /debug/slowest?k=K   the top K (default 10) resident requests
//	                         by duration, with span breakdowns
//	GET /debug/store         the persistent store's statistics snapshot
//	GET /debug/trace/{id}    one trace's full stitched span tree, from
//	                         the trace store and the flight ring
//	GET /debug/traces        the trace index, filterable by
//	                         ?endpoint=&min_ms=&since=&limit=
//	GET /debug/plans         per-plan cost profiles
//	GET /debug/pprof/*       the runtime profiler (CPU, heap, goroutine
//	                         — the stdlib pprof surface)
//	GET /metrics             Prometheus text exposition (convenience,
//	                         so one debug listener serves everything)
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/flight", s.handleDebugFlight)
	mux.HandleFunc("GET /debug/slowest", s.handleDebugSlowest)
	mux.HandleFunc("GET /debug/store", s.handleDebugStore)
	mux.HandleFunc("GET /debug/trace/{trace_id}", s.handleDebugTrace)
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	mux.HandleFunc("GET /debug/plans", s.handleDebugPlans)
	// The pprof handlers live on the debug socket only — never the
	// service port — so profiling a production shard needs the same
	// loopback access as the rest of the observatory.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// DebugTraceResponse answers GET /debug/trace/{trace_id}: every hop of
// one distributed trace, stitched from the persistent trace store and
// the live flight ring, ordered by time (span id breaking ties).  Both
// sources render through the trace codec, so the same trace produces
// byte-identical JSON before and after a restart.
type DebugTraceResponse struct {
	TraceID string              `json:"trace_id"`
	Found   bool                `json:"found"`
	Hops    []*obs.FlightRecord `json:"hops,omitempty"`
}

func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("trace_id")
	hops, _ := s.ttier.getTrace(id)
	seen := make(map[string]bool, len(hops))
	for _, hop := range hops {
		seen[hop.Span] = true
	}
	// Hops still in the flight ring but not (yet) persisted — sampled
	// out, or queued behind the writer — fill in from memory,
	// normalized through an encode/decode round trip so their JSON
	// matches what the store would have produced.
	for _, rec := range s.flight.Snapshot() {
		if rec.Trace != id || seen[rec.Span] {
			continue
		}
		norm, err := obs.DecodeTrace(obs.EncodeTrace(nil, &rec))
		if err != nil {
			continue
		}
		hops = append(hops, norm)
		seen[rec.Span] = true
	}
	sortHops(hops)
	writeJSON(w, http.StatusOK, DebugTraceResponse{
		TraceID: id,
		Found:   len(hops) > 0,
		Hops:    hops,
	})
}

// TraceSummary is one persisted hop in the GET /debug/traces index
// scan.
type TraceSummary struct {
	TraceID  string `json:"trace_id"`
	Endpoint string `json:"endpoint"`
	Status   int    `json:"status"`
	Micros   int64  `json:"us"`
	Time     string `json:"time"`
}

// DebugTracesResponse answers GET /debug/traces.
type DebugTracesResponse struct {
	Enabled bool `json:"enabled"`
	// Indexed counts the hops resident in the in-memory index (the
	// store may hold more; the index is the bounded hot view).
	Indexed int             `json:"indexed"`
	Stats   *TraceTierStats `json:"stats,omitempty"`
	Traces  []TraceSummary  `json:"traces"`
}

func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	resp := DebugTracesResponse{Traces: []TraceSummary{}}
	if st, ok := s.ttier.tierStats(); ok {
		resp.Enabled = true
		resp.Indexed = st.Indexed
		resp.Stats = &st
	}
	q := r.URL.Query()
	minMicros := int64(queryInt(r, "min_ms", 0)) * 1000
	var since int64
	if v := q.Get("since"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			since = n
		}
	}
	for _, e := range s.ttier.query(q.Get("endpoint"), minMicros, since, queryInt(r, "limit", 100)) {
		resp.Traces = append(resp.Traces, TraceSummary{
			TraceID:  hexTraceID(e.trace),
			Endpoint: e.endpoint,
			Status:   e.status,
			Micros:   e.micros,
			Time:     time.Unix(0, e.unixNano).UTC().Format(time.RFC3339Nano),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// DebugPlansResponse answers GET /debug/plans: per-plan cost profiles
// ordered by request count.
type DebugPlansResponse struct {
	Enabled bool          `json:"enabled"`
	Plans   []PlanProfile `json:"plans"`
}

func (s *Server) handleDebugPlans(w http.ResponseWriter, r *http.Request) {
	resp := DebugPlansResponse{
		Enabled: s.profiles != nil,
		Plans:   s.profiles.snapshot(),
	}
	if resp.Plans == nil {
		resp.Plans = []PlanProfile{}
	}
	if n := queryInt(r, "n", len(resp.Plans)); n < len(resp.Plans) {
		resp.Plans = resp.Plans[:n]
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDebugStore(w http.ResponseWriter, r *http.Request) {
	resp := DebugStoreResponse{}
	if st, ok := s.StoreStats(); ok {
		resp.Enabled = true
		resp.Stats = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// storeHealth condenses a store snapshot into its /healthz block.
func storeHealth(st store.Stats) *StoreHealth {
	h := &StoreHealth{
		Status:             "ok",
		Segments:           st.Segments,
		Bytes:              st.Bytes,
		Records:            st.Records,
		Hits:               st.Hits,
		Misses:             st.Misses,
		Compactions:        st.Compactions,
		LastCompactionUnix: st.LastCompactionUnix,
	}
	if st.Degraded {
		h.Status = "degraded"
	}
	return h
}

// queryInt parses a positive integer query parameter, falling back to
// def when absent or malformed.
func queryInt(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return def
	}
	return n
}

func (s *Server) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	resp := FlightResponse{
		Enabled:  s.flight != nil,
		Capacity: s.flight.Cap(),
		Total:    s.flight.Total(),
		Latency:  LatencySummary(),
	}
	recs := s.flight.Snapshot()
	// Newest first: the page answers "what just happened".
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
	if n := queryInt(r, "n", len(recs)); n < len(recs) {
		recs = recs[:n]
	}
	resp.Requests = recs
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDebugSlowest(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SlowestResponse{
		Enabled:  s.flight != nil,
		Requests: s.flight.Slowest(queryInt(r, "k", 10)),
	})
}
