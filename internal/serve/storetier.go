package serve

import (
	"encoding/json"
	"sync"

	"maest/internal/congest"
	"maest/internal/core"
	"maest/internal/engine"
	"maest/internal/obs"
	"maest/internal/store"
)

// The write-behind tier between the in-memory LRUs and the persistent
// store.  Reads are synchronous (an LRU miss probes the store before
// paying for compile+execute, and a store hit hydrates the LRU);
// writes are asynchronous: the request path enqueues the computed
// value and a writer goroutine does the JSON marshal and disk append
// off the latency path.  The store is a cache of recomputable results,
// so a write dropped under backpressure costs a future recompute, not
// correctness.
var (
	mStoreWrites     = obs.DefCounter("maest_store_writebehind_writes_total", "results persisted by the write-behind tier")
	mStoreWriteErrs  = obs.DefCounter("maest_store_writebehind_errors_total", "write-behind persists that failed")
	mStoreWriteDrops = obs.DefCounter("maest_store_writebehind_dropped_total", "write-behind persists dropped because the queue was full")
	gStoreQueue      = obs.DefGauge("maest_store_writebehind_queue", "write-behind queue depth")
)

// PlanMeta is the compiled-plan metadata persisted under a plan's
// content address (store.NSPlanMeta).  It records what the service
// compiled — which module, against which process, and how big — for
// the maest-store inspection CLI and capacity planning.  It is
// deliberately not a serialized Plan: recompiling needs the netlist
// source, which every request carries anyway; what a restart cannot
// recover for free is the history of what was compiled.
type PlanMeta struct {
	Module  string `json:"module"`
	Process string `json:"process"`
	Devices int    `json:"devices"`
	Nets    int    `json:"nets"`
	Ports   int    `json:"ports"`
}

// storeWrite is one queued persist.  The value is kept as its in-memory
// shape; the writer goroutine marshals it so the request path never
// pays for JSON encoding.
type storeWrite struct {
	ns  store.Namespace
	key store.Key
	val any
}

// storeTier wraps an open store with the write-behind queue.  A nil
// *storeTier is a well-defined disabled tier: lookups miss, persists
// are dropped — the same idiom as the nil LRU caches.
type storeTier struct {
	st    *store.Store
	queue chan storeWrite
	wg    sync.WaitGroup

	mu     sync.RWMutex // guards closed vs. in-flight enqueues
	closed bool
}

// newStoreTier starts the writer goroutine over an open store.
func newStoreTier(st *store.Store) *storeTier {
	t := &storeTier{st: st, queue: make(chan storeWrite, 4096)}
	t.wg.Add(1)
	go t.writer()
	return t
}

func (t *storeTier) writer() {
	defer t.wg.Done()
	for w := range t.queue {
		gStoreQueue.Set(float64(len(t.queue)))
		b, err := json.Marshal(w.val)
		if err == nil {
			err = t.st.Put(w.ns, w.key, b)
		}
		if err != nil {
			mStoreWriteErrs.Inc()
			continue
		}
		mStoreWrites.Inc()
	}
}

// enqueue hands one persist to the writer, dropping it (with a
// counter) when the queue is full or the tier is flushing — the
// request path never blocks on the disk.
func (t *storeTier) enqueue(ns store.Namespace, key Key, val any) {
	if t == nil {
		return
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		mStoreWriteDrops.Inc()
		return
	}
	select {
	case t.queue <- storeWrite{ns: ns, key: store.Key(key), val: val}:
	default:
		mStoreWriteDrops.Inc()
	}
}

// flush stops intake and blocks until every queued persist has reached
// the store.  Call before closing the store.
func (t *storeTier) flush() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()
	close(t.queue)
	t.wg.Wait()
}

// getResult probes the store for a persisted estimate.  Store hits
// decode back to the exact Result the original computation produced:
// Go's float64 JSON round trip is exact (shortest-representation
// encode, exact parse), so the re-encoded response is byte-identical
// to a fresh computation's — the differential test enforces it.
func (t *storeTier) getResult(key Key) (*core.Result, bool) {
	if t == nil {
		return nil, false
	}
	b, ok, err := t.st.Get(store.NSResult, store.Key(key))
	if err != nil || !ok {
		return nil, false
	}
	var res core.Result
	if json.Unmarshal(b, &res) != nil {
		// Undecodable payloads (a schema from a future version, say)
		// degrade to a miss: the service recomputes and overwrites.
		return nil, false
	}
	return &res, true
}

// getCongest is getResult for congestion maps.
func (t *storeTier) getCongest(key Key) (*congest.Map, bool) {
	if t == nil {
		return nil, false
	}
	b, ok, err := t.st.Get(store.NSCongest, store.Key(key))
	if err != nil || !ok {
		return nil, false
	}
	var m congest.Map
	if json.Unmarshal(b, &m) != nil {
		return nil, false
	}
	return &m, true
}

// getJob probes the store for a persisted floorplan job record.  Like
// getResult, a hit decodes back to the exact record the original
// process persisted — float64 JSON round trips are exact — so the
// re-encoded poll answer is byte-identical across a restart.
func (t *storeTier) getJob(key Key) (*JobResponse, bool) {
	if t == nil {
		return nil, false
	}
	b, ok, err := t.st.Get(store.NSFloorplan, store.Key(key))
	if err != nil || !ok {
		return nil, false
	}
	var rec JobResponse
	if json.Unmarshal(b, &rec) != nil {
		return nil, false
	}
	return &rec, true
}

// putJob persists one terminal job record, write-behind.
func (t *storeTier) putJob(key Key, rec *JobResponse) {
	t.enqueue(store.NSFloorplan, key, rec)
}

// putResult persists one estimate, write-behind.
func (t *storeTier) putResult(key Key, res *core.Result) {
	t.enqueue(store.NSResult, key, res)
}

// putCongest persists one congestion map, write-behind.
func (t *storeTier) putCongest(key Key, m *congest.Map) {
	t.enqueue(store.NSCongest, key, m)
}

// putPlanMeta persists one compiled plan's metadata, write-behind.
func (t *storeTier) putPlanMeta(key Key, pl *engine.Plan) {
	if t == nil {
		return
	}
	stats := pl.Stats()
	t.enqueue(store.NSPlanMeta, key, &PlanMeta{
		Module:  stats.CircuitName,
		Process: pl.Process().Name,
		Devices: stats.N,
		Nets:    stats.H,
		Ports:   stats.NumPorts,
	})
}

// stats snapshots the underlying store (ok=false when disabled).
func (t *storeTier) stats() (store.Stats, bool) {
	if t == nil {
		return store.Stats{}, false
	}
	return t.st.Stats(), true
}
