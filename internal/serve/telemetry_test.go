package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRequestIDHeaderAndAccessLog(t *testing.T) {
	var logBuf bytes.Buffer
	s := New(Options{FlightSize: 16, AccessLog: &logBuf})
	body := marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})

	w1 := do(s, "POST", "/v1/estimate", body)
	w2 := do(s, "POST", "/v1/estimate", body)
	id1, id2 := w1.Header().Get("X-Request-Id"), w2.Header().Get("X-Request-Id")
	if id1 == "" || id2 == "" {
		t.Fatalf("missing X-Request-Id: %q %q", id1, id2)
	}
	if id1 == id2 {
		t.Fatalf("request IDs not unique: %q", id1)
	}

	// One JSON object per line, with the logged ID matching the echoed
	// header and the repeat marked as a cache hit.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), logBuf.String())
	}
	var first, second accessEntry
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("access line 0 not JSON: %v\n%s", err, lines[0])
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("access line 1 not JSON: %v\n%s", err, lines[1])
	}
	if first.ID != id1 || second.ID != id2 {
		t.Fatalf("logged IDs %q/%q do not match headers %q/%q", first.ID, second.ID, id1, id2)
	}
	if first.Method != "POST" || first.Path != "/v1/estimate" || first.Status != 200 {
		t.Fatalf("first access entry: %+v", first)
	}
	if first.CacheHit || !second.CacheHit {
		t.Fatalf("cache flags: first=%v second=%v", first.CacheHit, second.CacheHit)
	}
	if first.Micros <= 0 {
		t.Fatalf("first duration %dus, want > 0", first.Micros)
	}
}

func TestAccessLogRecordsErrors(t *testing.T) {
	var logBuf bytes.Buffer
	s := New(Options{AccessLog: &logBuf})
	if w := do(s, "POST", "/v1/estimate", `{"netlist":""}`); w.Code != http.StatusBadRequest {
		t.Fatalf("status %d", w.Code)
	}
	var e accessEntry
	if err := json.Unmarshal(bytes.TrimSpace(logBuf.Bytes()), &e); err != nil {
		t.Fatalf("access line not JSON: %v\n%s", err, logBuf.String())
	}
	if e.Status != http.StatusBadRequest || e.Err == "" {
		t.Fatalf("error not logged: %+v", e)
	}
}

func TestNoRequestIDWhenTelemetryDisabled(t *testing.T) {
	s := New(Options{})
	w := do(s, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")}))
	if got := w.Header().Get("X-Request-Id"); got != "" {
		t.Fatalf("disabled telemetry still minted request ID %q", got)
	}
}

func TestPerEndpointLatencyHistograms(t *testing.T) {
	s := New(Options{})
	n0 := endpointSeconds["/v1/congestion"].Count()
	do(s, "POST", "/v1/congestion", marshal(t, CongestionRequest{Netlist: testdata(t, "demo.mnet"), Rows: 3}))
	if got := endpointSeconds["/v1/congestion"].Count() - n0; got != 1 {
		t.Fatalf("congestion histogram count delta = %d, want 1", got)
	}
	sum := LatencySummary()
	if len(sum) != 6 {
		t.Fatalf("latency summary has %d endpoints, want 6", len(sum))
	}
	for i, ep := range sum {
		if i > 0 && sum[i-1].Endpoint >= ep.Endpoint {
			t.Fatalf("summary not sorted: %q before %q", sum[i-1].Endpoint, ep.Endpoint)
		}
		if ep.P50Seconds > ep.P90Seconds || ep.P90Seconds > ep.P99Seconds {
			t.Fatalf("%s quantiles not monotone: %+v", ep.Endpoint, ep)
		}
	}
}

// TestInstrumentDisabledZeroAlloc pins the acceptance criterion that
// the observatory adds zero allocations to the request hot loop when
// the flight recorder and access log are off.  The wrapped handler is
// a no-op so only the instrumentation itself is measured.
func TestInstrumentDisabledZeroAlloc(t *testing.T) {
	s := New(Options{})
	h := s.instrument("/v1/estimate", func(http.ResponseWriter, *http.Request, *reqInfo) {})
	req := httptest.NewRequest("POST", "/v1/estimate", nil)
	var w nullResponseWriter
	if allocs := testing.AllocsPerRun(1000, func() { h(&w, req) }); allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f objects per request, want 0", allocs)
	}
}

// nullResponseWriter is the cheapest possible ResponseWriter, so the
// zero-alloc measurement sees only the instrumentation.
type nullResponseWriter struct{ h http.Header }

func (w *nullResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header)
	}
	return w.h
}
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}
