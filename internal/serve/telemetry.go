package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"maest/internal/obs"
)

// Per-endpoint latency histograms.  Each endpoint is its own metric
// family (the registry has no label dimension), which keeps the
// exposition valid and lets Quantile answer p50/p90/p99 per endpoint
// without a Prometheus server in the loop.
var endpointSeconds = map[string]*obs.Histogram{
	"/v1/estimate":       obs.DefHistogram("maest_serve_estimate_seconds", "POST /v1/estimate latency", obs.DefBuckets),
	"/v1/estimate/batch": obs.DefHistogram("maest_serve_batch_seconds", "POST /v1/estimate/batch latency", obs.DefBuckets),
	"/v1/estimate/delta": obs.DefHistogram("maest_serve_delta_seconds", "POST /v1/estimate/delta latency", obs.DefBuckets),
	"/v1/congestion":     obs.DefHistogram("maest_serve_congestion_seconds", "POST /v1/congestion latency", obs.DefBuckets),
	"/v1/floorplan":      obs.DefHistogram("maest_serve_floorplan_seconds", "POST /v1/floorplan submit latency", obs.DefBuckets),
	"/v1/jobs":           obs.DefHistogram("maest_serve_jobs_seconds", "GET/DELETE /v1/jobs/{id} latency", obs.DefBuckets),
}

// EndpointLatency is one endpoint's latency distribution summary,
// quantiles interpolated from the endpoint's histogram buckets.
type EndpointLatency struct {
	Endpoint   string  `json:"endpoint"`
	Count      int64   `json:"count"`
	MeanSecs   float64 `json:"mean_seconds"`
	P50Seconds float64 `json:"p50_seconds"`
	P90Seconds float64 `json:"p90_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	// Exemplars lists, per histogram bucket that has one, the most
	// recent trace id that landed there — a bucket on this page becomes
	// one GET /debug/trace/{trace_id}.  Populated only while request
	// telemetry is enabled (the zero-alloc disabled path never records
	// exemplars).
	Exemplars []EndpointExemplar `json:"exemplars,omitempty"`
}

// EndpointExemplar is one latency bucket's exemplar in the /debug
// JSON: the bucket's upper bound (as the Prometheus `le` string, so
// the overflow bucket reads "+Inf"), the trace id, and the observed
// latency.
type EndpointExemplar struct {
	LE      string  `json:"le"`
	TraceID string  `json:"trace_id"`
	Seconds float64 `json:"seconds"`
}

// endpointExemplars renders a histogram's exemplars in the JSON-safe
// shape (the +Inf bound cannot ride through encoding/json as a float).
func endpointExemplars(h *obs.Histogram) []EndpointExemplar {
	buckets := h.Exemplars()
	if len(buckets) == 0 {
		return nil
	}
	out := make([]EndpointExemplar, 0, len(buckets))
	for _, b := range buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
		}
		out = append(out, EndpointExemplar{
			LE:      le,
			TraceID: b.Exemplar.TraceID,
			Seconds: b.Exemplar.Value,
		})
	}
	return out
}

// LatencySummary returns the process-wide per-endpoint latency
// quantiles, endpoints sorted for stable output.  Endpoints that have
// served no requests are included with zero counts so dashboards see
// a fixed shape.
func LatencySummary() []EndpointLatency {
	out := make([]EndpointLatency, 0, len(endpointSeconds))
	for ep, h := range endpointSeconds {
		out = append(out, EndpointLatency{
			Endpoint:   ep,
			Count:      h.Count(),
			MeanSecs:   h.Mean(),
			P50Seconds: h.Quantile(0.50),
			P90Seconds: h.Quantile(0.90),
			P99Seconds: h.Quantile(0.99),
			Exemplars:  endpointExemplars(h),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// Request IDs: a per-process random prefix plus a sequence number —
// unique across restarts for log correlation, cheap to mint, and easy
// to grep.
var (
	reqSeq      atomic.Uint64
	reqIDPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
)

func nextRequestID() string {
	return fmt.Sprintf("%s-%06d", reqIDPrefix, reqSeq.Add(1))
}

// accessLogger writes one JSON line per request.  Lines are emitted
// whole under a mutex so concurrent handlers never interleave.
type accessLogger struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newAccessLogger(w io.Writer) *accessLogger {
	return &accessLogger{enc: json.NewEncoder(w)}
}

// accessEntry is the wire form of one access-log line.
type accessEntry struct {
	Time     string `json:"time"`
	ID       string `json:"id"`
	Trace    string `json:"trace,omitempty"`
	Method   string `json:"method"`
	Path     string `json:"path"`
	Status   int    `json:"status"`
	Micros   int64  `json:"us"`
	CacheHit bool   `json:"cache_hit"`
	Err      string `json:"err,omitempty"`
}

func (l *accessLogger) log(e accessEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.enc.Encode(e) // best-effort: a broken log writer must not fail requests
}

// reqInfo accumulates one request's telemetry while its handler runs.
// A nil *reqInfo is the disabled state — every method is a no-op — so
// handlers annotate unconditionally and the hot path stays free when
// neither the flight recorder nor the access log is on.
type reqInfo struct {
	id       string
	method   string
	endpoint string
	t0       time.Time
	lastMark time.Time
	stages   []obs.FlightStage
	digest   string
	plan     string
	cacheHit bool
	storeHit bool
	errMsg   string
	spans    *obs.Collect // non-nil only when the flight recorder is on

	// trace is this hop's own W3C trace context (minted fresh for trace
	// roots, a Child of the incoming traceparent otherwise); parentSpan
	// is the caller's span id from the incoming header, empty at roots.
	trace      obs.TraceContext
	parentSpan string
}

// requestID returns the request id for error bodies ("" when
// telemetry is disabled).
func (ri *reqInfo) requestID() string {
	if ri == nil {
		return ""
	}
	return ri.id
}

// traceID returns the hop's trace id for error bodies ("" when
// telemetry is disabled).
func (ri *reqInfo) traceID() string {
	if ri == nil || !ri.trace.Valid() {
		return ""
	}
	return ri.trace.TraceIDString()
}

// mark closes the current stage: the time since the previous mark (or
// the request start) is recorded under name.
func (ri *reqInfo) mark(name string) {
	if ri == nil {
		return
	}
	now := time.Now()
	ri.stages = append(ri.stages, obs.FlightStage{Name: name, Micros: now.Sub(ri.lastMark).Microseconds()})
	ri.lastMark = now
}

// setDigest records the request's content address.
func (ri *reqInfo) setDigest(k Key) {
	if ri == nil {
		return
	}
	ri.digest = k.String()
}

// setCacheHit records the cache disposition.
func (ri *reqInfo) setCacheHit(hit bool) {
	if ri == nil {
		return
	}
	ri.cacheHit = hit
}

// setPlan records the compiled plan the request resolved to — the key
// per-plan cost profiles group by.
func (ri *reqInfo) setPlan(k Key) {
	if ri == nil {
		return
	}
	ri.plan = k.String()
}

// setStoreHit records that the answer came from the persistent store
// tier rather than the in-memory LRU.
func (ri *reqInfo) setStoreHit(hit bool) {
	if ri == nil {
		return
	}
	ri.storeHit = hit
}

// fail records the outcome error (writeError renders the response).
func (ri *reqInfo) fail(err error) {
	if ri == nil || err == nil {
		return
	}
	ri.errMsg = err.Error()
}

// statusWriter captures the response status for the telemetry record.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// flightSpanCap bounds one record's span-tree summary.
const flightSpanCap = 32

// instrument wraps one endpoint handler with the request telemetry:
// aggregate and per-endpoint latency histograms always; request IDs,
// the JSON access log, and the flight recorder when enabled.  The
// disabled path (no flight recorder, no access log) adds zero
// allocations on top of the wrapped handler — enforced by
// TestInstrumentDisabledZeroAlloc.
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request, *reqInfo)) http.HandlerFunc {
	hist := endpointSeconds[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		mRequests.Inc()
		t0 := time.Now()
		if s.flight == nil && s.access == nil && s.ttier == nil {
			h(w, r, nil)
			lat := time.Since(t0).Seconds()
			mServeSec.Observe(lat)
			hist.Observe(lat)
			return
		}

		info := &reqInfo{
			id:       nextRequestID(),
			method:   r.Method,
			endpoint: endpoint,
			t0:       t0,
			lastMark: t0,
		}
		// W3C trace context: an incoming traceparent roots this hop in
		// the caller's trace (the caller's span id becomes our parent);
		// otherwise this hop is a trace root.  Either way the hop gets
		// its own span id, installed in ctx so outbound calls (the
		// proxy, internal/client) can continue the chain.
		if tc, err := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); err == nil {
			info.parentSpan = tc.SpanIDString()
			info.trace = tc.Child()
		} else {
			info.trace = obs.NewTraceContext()
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		sw.Header().Set("X-Request-Id", info.id)
		sw.Header().Set("X-Trace-Id", info.trace.TraceIDString())

		recording := s.flight != nil || s.ttier != nil
		var startCosts obs.RequestCosts
		if recording {
			startCosts = obs.ReadRequestCosts()
		}

		// Thread the request through a root span carrying the request
		// ID, fanned out to both the server's trace sink (if any) and
		// the flight recorder's bounded per-request collector.
		ctx := obs.WithTraceContext(r.Context(), info.trace)
		var root *obs.Span
		if recording {
			info.spans = obs.NewCollect(flightSpanCap)
			ctx = obs.WithSink(ctx, obs.Multi(obs.SinkFrom(ctx), info.spans))
		}
		ctx, root = obs.Start(ctx, "request")
		root.SetString("endpoint", endpoint)
		root.SetString("request_id", info.id)
		root.SetString("trace_id", info.trace.TraceIDString())
		h(sw, r.WithContext(ctx), info)
		root.End()

		dur := time.Since(t0)
		lat := dur.Seconds()
		traceID := info.trace.TraceIDString()
		// Exemplars: the enabled path stamps the latency buckets with
		// this request's trace id, so a bucket on a dashboard resolves
		// to one GET /debug/trace/{trace_id}.
		mServeSec.ObserveExemplar(lat, traceID)
		hist.ObserveExemplar(lat, traceID)

		if recording {
			costs := obs.ReadRequestCosts().Since(startCosts)
			rec := obs.FlightRecord{
				ID:             info.id,
				Trace:          traceID,
				Span:           info.trace.SpanIDString(),
				ParentSpan:     info.parentSpan,
				Time:           t0,
				Method:         info.method,
				Endpoint:       endpoint,
				Status:         sw.status,
				Micros:         dur.Microseconds(),
				Digest:         info.digest,
				Plan:           info.plan,
				CacheHit:       info.cacheHit,
				StoreHit:       info.storeHit,
				AllocBytes:     int64(costs.AllocBytes),
				GCAssistMicros: int64(costs.GCAssistSeconds * 1e6),
				Err:            info.errMsg,
				Stages:         info.stages,
			}
			if info.spans != nil {
				rec.Spans = info.spans.Spans()
			}
			// The ring's assigned sequence number rides into the
			// persisted copy so the live and post-restart renderings of
			// one trace agree byte for byte.
			rec.Seq = s.flight.Record(rec)
			failed := sw.status >= 400 || info.errMsg != ""
			if s.ttier != nil {
				if v := s.sampler.Keep(info.trace.TraceID, dur.Microseconds(), failed); v != obs.SampleDrop {
					s.ttier.enqueue(rec)
				}
			}
			s.profiles.observe(info.plan, lat, failed, info.cacheHit, info.storeHit,
				info.stages, s.watchdog.Health().MaxDriftPP)
		}
		if s.access != nil {
			s.access.log(accessEntry{
				Time:     t0.UTC().Format(time.RFC3339Nano),
				ID:       info.id,
				Trace:    info.trace.TraceIDString(),
				Method:   info.method,
				Path:     endpoint,
				Status:   sw.status,
				Micros:   dur.Microseconds(),
				CacheHit: info.cacheHit,
				Err:      info.errMsg,
			})
		}
	}
}
