package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"maest/internal/obs"
	"maest/internal/store"
)

// keepAll is the test sampling policy: every request persists.
var keepAll = obs.SamplePolicy{Rate: 1, SlowMicros: 100_000, KeepErrors: true}

// newTraceServer boots a Server persisting every trace into a store
// over dir.  The caller owns close ordering via the returned store.
func newTraceServer(t *testing.T, dir string) (*Server, *store.Store) {
	t.Helper()
	st := openTestStore(t, dir)
	s := New(Options{FlightSize: 16, TraceStore: st, Sample: keepAll})
	return s, st
}

func TestTraceTierDisabled(t *testing.T) {
	var tier *traceTier
	tier.enqueue(obs.FlightRecord{})
	tier.sync()
	tier.flush()
	tier.flush()
	if _, ok := tier.getTrace(strings.Repeat("a", 32)); ok {
		t.Error("nil tier answered a trace lookup")
	}
	if got := tier.query("", 0, 0, 10); got != nil {
		t.Errorf("nil tier query returned %v", got)
	}
	if tier.indexed() != 0 {
		t.Error("nil tier has indexed hops")
	}
	if _, ok := tier.tierStats(); ok {
		t.Error("nil tier has stats")
	}

	s := New(Options{FlightSize: 4})
	if _, ok := s.TraceStats(); ok {
		t.Error("server without a trace store reports trace stats")
	}
	s.SyncTraces()
	s.FlushTraces()
	if s.Sampler() != nil {
		t.Error("server without a trace store has a sampler")
	}
	var resp DebugTracesResponse
	if err := json.Unmarshal(doDebug(t, s, "/debug/traces"), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Enabled || resp.Stats != nil || len(resp.Traces) != 0 {
		t.Fatalf("debug/traces without a trace store: %+v", resp)
	}
	var tr DebugTraceResponse
	if err := json.Unmarshal(doDebug(t, s, "/debug/trace/"+strings.Repeat("a", 32)), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Found {
		t.Fatalf("unknown trace reported found: %+v", tr)
	}
}

func TestTraceTierPersistsSampledTraffic(t *testing.T) {
	s, st := newTraceServer(t, t.TempDir())
	defer st.Close()
	defer s.FlushTraces()

	est := marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})
	do(s, "POST", "/v1/estimate", est)
	do(s, "POST", "/v1/estimate", est)              // cache hit
	do(s, "POST", "/v1/estimate", `{"netlist":""}`) // 400, kept by KeepErrors
	s.SyncTraces()

	stats, ok := s.TraceStats()
	if !ok {
		t.Fatal("trace stats unavailable with a trace store")
	}
	if stats.Writes != 3 || stats.Errors != 0 || stats.Dropped != 0 || stats.Indexed != 3 {
		t.Fatalf("tier stats %+v, want 3 clean writes", stats)
	}
	ss := s.Sampler().Stats()
	if ss.Seen != 3 || ss.Kept != 3 || ss.Errors != 1 {
		t.Fatalf("sampler stats %+v", ss)
	}

	// The index scan surfaces all three hops, newest first.
	var idx DebugTracesResponse
	if err := json.Unmarshal(doDebug(t, s, "/debug/traces"), &idx); err != nil {
		t.Fatal(err)
	}
	if !idx.Enabled || idx.Indexed != 3 || len(idx.Traces) != 3 {
		t.Fatalf("index scan: %+v", idx)
	}
	if idx.Traces[0].Status != 400 {
		t.Fatalf("newest hop should be the failed request: %+v", idx.Traces[0])
	}
	for _, tr := range idx.Traces {
		if len(tr.TraceID) != 32 || tr.Endpoint != "/v1/estimate" {
			t.Fatalf("summary row: %+v", tr)
		}
		if _, err := time.Parse(time.RFC3339Nano, tr.Time); err != nil {
			t.Fatalf("unparseable hop time %q: %v", tr.Time, err)
		}
	}

	// Each trace resolves to its full record through /debug/trace/{id}.
	var full DebugTraceResponse
	if err := json.Unmarshal(doDebug(t, s, "/debug/trace/"+idx.Traces[0].TraceID), &full); err != nil {
		t.Fatal(err)
	}
	if !full.Found || len(full.Hops) != 1 {
		t.Fatalf("trace fetch: %+v", full)
	}
	hop := full.Hops[0]
	if hop.Status != 400 || hop.Err == "" || hop.Endpoint != "/v1/estimate" {
		t.Fatalf("persisted hop lost its outcome: %+v", hop)
	}
}

// TestTraceRenderingStableAcrossRestart is the package-level form of
// the restart acceptance: the JSON for one trace must be byte-identical
// before and after the serving process is torn down and rebuilt over
// the same trace store directory.
func TestTraceRenderingStableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, st1 := newTraceServer(t, dir)
	do(s1, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")}))
	s1.SyncTraces()

	var idx DebugTracesResponse
	if err := json.Unmarshal(doDebug(t, s1, "/debug/traces"), &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Traces) != 1 {
		t.Fatalf("expected one trace, got %+v", idx)
	}
	id := idx.Traces[0].TraceID
	before := doDebug(t, s1, "/debug/trace/"+id)

	s1.FlushTraces()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh process: empty flight ring, index rebuilt from disk.
	s2, st2 := newTraceServer(t, dir)
	defer st2.Close()
	defer s2.FlushTraces()
	after := doDebug(t, s2, "/debug/trace/"+id)
	if string(before) != string(after) {
		t.Fatalf("trace rendering changed across restart:\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestDebugTraceStitchesFlightOnlyHops: a request the sampler dropped
// still renders from the flight ring, normalized through the codec so
// its JSON matches what the store would have produced.
func TestDebugTraceStitchesFlightOnlyHops(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	defer st.Close()
	// Rate 0 with errors only: the OK request below is never persisted.
	s := New(Options{FlightSize: 16, TraceStore: st, Sample: obs.SamplePolicy{KeepErrors: true}})
	defer s.FlushTraces()

	do(s, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")}))
	s.SyncTraces()
	if stats, _ := s.TraceStats(); stats.Writes != 0 {
		t.Fatalf("rate-0 policy persisted %d traces", stats.Writes)
	}
	recs := s.flight.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("flight ring has %d records", len(recs))
	}
	var full DebugTraceResponse
	if err := json.Unmarshal(doDebug(t, s, "/debug/trace/"+recs[0].Trace), &full); err != nil {
		t.Fatal(err)
	}
	if !full.Found || len(full.Hops) != 1 || full.Hops[0].Endpoint != "/v1/estimate" {
		t.Fatalf("flight-only trace not stitched: %+v", full)
	}
}

func TestDebugTracesFilters(t *testing.T) {
	s, st := newTraceServer(t, t.TempDir())
	defer st.Close()
	defer s.FlushTraces()

	do(s, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")}))
	do(s, "POST", "/v1/congestion", marshal(t, CongestionRequest{Netlist: testdata(t, "demo.mnet"), Rows: 3}))
	s.SyncTraces()

	get := func(path string) DebugTracesResponse {
		t.Helper()
		var resp DebugTracesResponse
		if err := json.Unmarshal(doDebug(t, s, path), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := get("/debug/traces?endpoint=/v1/congestion"); len(resp.Traces) != 1 ||
		resp.Traces[0].Endpoint != "/v1/congestion" {
		t.Fatalf("endpoint filter: %+v", resp.Traces)
	}
	if resp := get("/debug/traces?limit=1"); len(resp.Traces) != 1 {
		t.Fatalf("limit: %+v", resp.Traces)
	}
	// min_ms far above anything these requests took filters everything.
	if resp := get("/debug/traces?min_ms=60000"); len(resp.Traces) != 0 {
		t.Fatalf("min_ms filter: %+v", resp.Traces)
	}
	// since in the future filters everything; since 0 keeps all.
	future := time.Now().Add(time.Hour).Unix()
	if resp := get(fmt.Sprintf("/debug/traces?since=%d", future)); len(resp.Traces) != 0 {
		t.Fatalf("since filter: %+v", resp.Traces)
	}
	if resp := get("/debug/traces"); len(resp.Traces) != 2 {
		t.Fatalf("unfiltered scan: %+v", resp.Traces)
	}
}

func TestTraceTierEnqueueAfterFlushDrops(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	defer st.Close()
	tier := newTraceTier(st)
	tier.flush()
	tier.enqueue(obs.FlightRecord{Trace: strings.Repeat("a", 32), Span: strings.Repeat("b", 16)})
	if stats, _ := tier.tierStats(); stats.Dropped != 1 || stats.Writes != 0 {
		t.Fatalf("post-flush enqueue: %+v", stats)
	}
	tier.flush() // idempotent
}

func TestTraceTierBadSpanIDCountsError(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	defer st.Close()
	tier := newTraceTier(st)
	defer tier.flush()
	tier.enqueue(obs.FlightRecord{Trace: "not-hex", Span: "nope"})
	tier.sync()
	if stats, _ := tier.tierStats(); stats.Errors != 1 || stats.Writes != 0 {
		t.Fatalf("unkeyable record: %+v", stats)
	}
}

func TestTraceIndexEvictsOldest(t *testing.T) {
	tier := &traceTier{byTrace: make(map[[16]byte][]store.Key)}
	mk := func(i int) traceEntry {
		var e traceEntry
		e.key[0] = byte(i)
		e.key[1] = byte(i >> 8)
		e.key[2] = byte(i >> 16)
		copy(e.trace[:], e.key[:16])
		e.unixNano = int64(i)
		return e
	}
	for i := 0; i < traceIndexCap+10; i++ {
		tier.indexAdd(mk(i))
	}
	if got := tier.indexed(); got != traceIndexCap {
		t.Fatalf("index holds %d entries, cap %d", got, traceIndexCap)
	}
	// The first ten entries were evicted, map rows included.
	for i := 0; i < 10; i++ {
		if _, ok := tier.byTrace[mk(i).trace]; ok {
			t.Fatalf("evicted entry %d still in byTrace", i)
		}
	}
	if tier.entries[0].unixNano != 10 {
		t.Fatalf("oldest surviving entry is %d, want 10", tier.entries[0].unixNano)
	}
}

func TestPlanProfilesAggregation(t *testing.T) {
	var nilP *planProfiles
	nilP.observe("p", 0.1, false, false, false, nil, 0)
	if got := nilP.snapshot(); got != nil {
		t.Fatalf("nil profiles snapshot: %v", got)
	}

	p := newPlanProfiles(8)
	stages := []obs.FlightStage{{Name: "decode", Micros: 5}, {Name: "estimate", Micros: 100}}
	p.observe("plan-a", 0.010, false, false, false, stages, 0.04)
	p.observe("plan-a", 0.001, false, true, true, nil, 0.05)
	p.observe("plan-a", 0.020, true, false, false, stages, 0.05)
	p.observe("plan-b", 0.002, false, false, false, nil, 0.05)
	p.observe("", 0.002, false, false, false, nil, 0) // no plan: ignored

	snap := p.snapshot()
	if len(snap) != 2 || snap[0].Plan != "plan-a" || snap[1].Plan != "plan-b" {
		t.Fatalf("snapshot order: %+v", snap)
	}
	a := snap[0]
	if a.Requests != 3 || a.Errors != 1 || a.CacheHits != 1 || a.StoreHits != 1 {
		t.Fatalf("plan-a counters: %+v", a)
	}
	if a.CacheHitRatio < 0.33 || a.CacheHitRatio > 0.34 {
		t.Fatalf("plan-a cache ratio %f", a.CacheHitRatio)
	}
	if a.MeanEstimateMicros != 100 {
		t.Fatalf("plan-a mean estimate %fus, want 100 (decode stage must not count)", a.MeanEstimateMicros)
	}
	if a.LastDriftPP != 0.05 || a.LastSeenUnix == 0 {
		t.Fatalf("plan-a drift stamp: %+v", a)
	}
	if a.P50Seconds <= 0 || a.P99Seconds < a.P50Seconds {
		t.Fatalf("plan-a quantiles: p50=%f p99=%f", a.P50Seconds, a.P99Seconds)
	}
}

func TestPlanProfilesEvictLeastRecentlySeen(t *testing.T) {
	p := newPlanProfiles(2)
	p.observe("old", 0.001, false, false, false, nil, 0)
	time.Sleep(2 * time.Millisecond)
	p.observe("mid", 0.001, false, false, false, nil, 0)
	time.Sleep(2 * time.Millisecond)
	p.observe("new", 0.001, false, false, false, nil, 0)
	snap := p.snapshot()
	if len(snap) != 2 {
		t.Fatalf("profile map holds %d plans, cap 2", len(snap))
	}
	for _, pp := range snap {
		if pp.Plan == "old" {
			t.Fatal("least recently seen plan survived eviction")
		}
	}
}

func TestDebugPlansEndpoint(t *testing.T) {
	s, st := newTraceServer(t, t.TempDir())
	defer st.Close()
	defer s.FlushTraces()

	est := marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})
	first := decodeEstimate(t, do(s, "POST", "/v1/estimate", est))
	do(s, "POST", "/v1/estimate", est)

	var resp DebugPlansResponse
	if err := json.Unmarshal(doDebug(t, s, "/debug/plans"), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Enabled || len(resp.Plans) != 1 {
		t.Fatalf("debug/plans: %+v", resp)
	}
	pp := resp.Plans[0]
	if pp.Plan != first.Plan {
		t.Fatalf("profile keyed by %q, response plan %q", pp.Plan, first.Plan)
	}
	if pp.Requests != 2 || pp.CacheHits != 1 || pp.Errors != 0 {
		t.Fatalf("profile counters: %+v", pp)
	}
	if pp.MeanEstimateMicros <= 0 {
		t.Fatalf("estimate stage time missing: %+v", pp)
	}

	// ?n=0 truncates to nothing but stays well-formed.
	if err := json.Unmarshal(doDebug(t, s, "/debug/plans?n=0"), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Plans) != 0 {
		t.Fatalf("?n=0 returned %d plans", len(resp.Plans))
	}

	// Disabled server: enabled=false, plans renders as [].
	off := New(Options{})
	body := doDebug(t, off, "/debug/plans")
	if !strings.Contains(string(body), `"plans":[]`) || !strings.Contains(string(body), `"enabled":false`) {
		t.Fatalf("disabled debug/plans: %s", body)
	}
}

// TestExemplarsExposed: the per-endpoint histograms remember trace ids
// when telemetry is on, the /debug/flight JSON carries them, the
// Prometheus exposition emits them as ignorable comments, and each id
// resolves through GET /debug/trace/{id}.
func TestExemplarsExposed(t *testing.T) {
	s, st := newTraceServer(t, t.TempDir())
	defer st.Close()
	defer s.FlushTraces()
	do(s, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")}))
	s.SyncTraces()

	// This test's own trace id: the most recent estimate observation,
	// so its landing bucket's exemplar must carry it (the endpoint
	// histograms are process-global, so other buckets may hold trace
	// ids from earlier tests).
	recs := s.flight.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("flight ring has %d records", len(recs))
	}
	ownTrace := recs[0].Trace

	var fl FlightResponse
	if err := json.Unmarshal(doDebug(t, s, "/debug/flight"), &fl); err != nil {
		t.Fatal(err)
	}
	var exemplar EndpointExemplar
	for _, ep := range fl.Latency {
		if ep.Endpoint != "/v1/estimate" {
			continue
		}
		if len(ep.Exemplars) == 0 {
			t.Fatalf("estimate endpoint has no exemplars: %+v", ep)
		}
		for _, ex := range ep.Exemplars {
			if ex.TraceID == ownTrace {
				exemplar = ex
			}
		}
	}
	if exemplar.TraceID != ownTrace {
		t.Fatalf("no exemplar carries this test's trace %s", ownTrace)
	}
	if exemplar.Seconds <= 0 || exemplar.LE == "" {
		t.Fatalf("exemplar shape: %+v", exemplar)
	}

	// The exemplar's trace id resolves to the persisted trace.
	var full DebugTraceResponse
	if err := json.Unmarshal(doDebug(t, s, "/debug/trace/"+exemplar.TraceID), &full); err != nil {
		t.Fatal(err)
	}
	if !full.Found {
		t.Fatalf("exemplar trace id %s does not resolve", exemplar.TraceID)
	}

	// The exposition carries the exemplar comment and the conformance
	// Content-Type.
	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if got := w.Header().Get("Content-Type"); got != "text/plain; version=0.0.4" {
		t.Fatalf("metrics Content-Type %q", got)
	}
	if !strings.Contains(w.Body.String(), "# EXEMPLAR maest_serve_request_seconds_bucket") {
		t.Fatal("exposition missing # EXEMPLAR lines for the serve histogram")
	}
	if !strings.Contains(w.Body.String(), "trace_id="+exemplar.TraceID) {
		t.Fatalf("exposition exemplars do not mention trace %s", exemplar.TraceID)
	}
}

// TestInstrumentTraceStoreZeroAllocObserve: with telemetry fully off
// (no flight ring, no access log, no trace store) the instrumented
// handler still allocates nothing — the trace-tier wiring must not
// have moved the disabled path off zero.
func TestInstrumentAllTelemetryOffZeroAlloc(t *testing.T) {
	s := New(Options{})
	if s.ttier != nil || s.sampler != nil || s.profiles != nil {
		t.Fatal("Options{} built telemetry state")
	}
	h := s.instrument("/v1/estimate", func(http.ResponseWriter, *http.Request, *reqInfo) {})
	req := httptest.NewRequest("POST", "/v1/estimate", nil)
	var w nullResponseWriter
	if allocs := testing.AllocsPerRun(1000, func() { h(&w, req) }); allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %.1f objects per request, want 0", allocs)
	}
}

// TestDefaultSamplePolicy: a trace store with a zero Sample policy gets
// the documented default (5% baseline, 100ms slow tail, keep errors).
func TestDefaultSamplePolicy(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	defer st.Close()
	s := New(Options{TraceStore: st})
	defer s.FlushTraces()
	pol := s.Sampler().Policy()
	if pol.Rate != 0.05 || pol.SlowMicros != 100_000 || !pol.KeepErrors {
		t.Fatalf("default sampling policy: %+v", pol)
	}
}

// TestWatchdogRecoveryWithDegradedStore is the health interplay
// satellite: an accuracy regression flips /healthz to 503 even while
// the persistent store is degraded; when the accuracy recovers, the
// endpoint returns to 200 with the store block still reporting its
// corruption.  Store health and accuracy health are independent
// signals and must not mask each other.
func TestWatchdogRecoveryWithDegradedStore(t *testing.T) {
	// A store with one corrupt sealed record: degraded from open.
	sdir := t.TempDir()
	seed, err := store.Open(store.Options{Dir: sdir, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		k := store.Key{}
		k[0], k[1] = byte(i), 0xEE
		if err := seed.Put(store.NSResult, k, []byte(strings.Repeat("x", 64))); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}
	corruptOneSegment(t, sdir)
	st, err := store.Open(store.Options{Dir: sdir, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Stats().Degraded {
		t.Fatal("test setup: store not degraded")
	}

	// Goldens in a scratch dir so the test can doctor and restore them.
	gdir := t.TempDir()
	copyGolden(t, gdir)
	doctorGolden(t, gdir)

	opts := wdOptions()
	opts.GoldenDir = gdir
	s := New(Options{Store: st, Watchdog: opts})
	defer s.FlushStore()
	wd := s.Watchdog()

	if regs := wd.Probe(context.Background()); len(regs) == 0 {
		t.Fatal("doctored golden not detected")
	}
	w := do(s, "GET", "/healthz", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded accuracy: healthz %d, want 503", w.Code)
	}
	var hr HealthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Store == nil || hr.Store.Status != "degraded" {
		t.Fatalf("store block while accuracy-degraded: %+v", hr.Store)
	}

	// Accuracy recovers: restore the real goldens and probe again.
	copyGolden(t, gdir)
	if regs := wd.Probe(context.Background()); len(regs) != 0 {
		t.Fatalf("clean probe still regressing: %v", regs)
	}
	w = do(s, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("recovered accuracy: healthz %d, want 200 (%s)", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Watchdog == nil || hr.Watchdog.Degraded {
		t.Fatalf("recovered health body: %+v", hr)
	}
	// The store is still degraded — recovery of one signal must not
	// paper over the other.
	if hr.Store == nil || hr.Store.Status != "degraded" {
		t.Fatalf("store block after accuracy recovery: %+v", hr.Store)
	}
}

// corruptOneSegment flips one byte in the middle of the first sealed
// segment file in dir.
func corruptOneSegment(t *testing.T, dir string) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no sealed segments to corrupt: %v %v", segs, err)
	}
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// copyGolden copies the checked-in golden tables into dir.
func copyGolden(t *testing.T, dir string) {
	t.Helper()
	for _, name := range []string{"table1.txt", "table2.txt"} {
		b, err := os.ReadFile(filepath.Join(wdGoldenDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// doctorGolden shifts one golden error column so the live estimator
// appears to have drifted past tolerance.
func doctorGolden(t *testing.T, dir string) {
	t.Helper()
	path := filepath.Join(dir, "table1.txt")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(b), "-25.9", "-15.9", 1)
	if doctored == string(b) {
		t.Fatal("golden perturbation found nothing to replace; update the test")
	}
	if err := os.WriteFile(path, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
}
