package serve

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"maest/internal/congest"
	"maest/internal/core"
	"maest/internal/engine"
	"maest/internal/hdl"
	"maest/internal/netlist"
	"maest/internal/tech"
)

// The wire format.  Field names are snake_case and stable: clients
// (floorplanner loops, load generators) pin against this shape.

// EstimateRequest is the POST /v1/estimate payload: one circuit as
// netlist source text plus the estimator knobs.
type EstimateRequest struct {
	// Format selects the netlist language: "mnet" (default), "bench",
	// or "verilog".
	Format string `json:"format,omitempty"`
	// Name is the module name for .bench inputs (which carry none).
	Name string `json:"name,omitempty"`
	// Netlist is the circuit source text.
	Netlist string `json:"netlist"`
	// Process is a built-in process name ("nmos25", "cmos30"); empty
	// selects the server's default.
	Process string `json:"process,omitempty"`
	// Rows fixes the standard-cell row count (0 = §5 automatic).
	Rows int `json:"rows,omitempty"`
	// TrackSharing enables the §7 routing-track-sharing extension.
	TrackSharing bool `json:"track_sharing,omitempty"`
}

// DeltaRequest is the POST /v1/estimate/delta payload: an ECO-style
// edit script against a previously compiled plan, named by the "plan"
// key a prior /v1/estimate or /v1/estimate/delta answer carried.  The
// service replays the edits through the incremental Delta route —
// bit-identical to re-estimating the edited netlist from scratch —
// without re-sending or re-parsing the netlist source.
type DeltaRequest struct {
	// Parent is the hex plan key of the base plan.  An unknown parent
	// (aged out of the plan cache) answers 404; the caller falls back
	// to a full /v1/estimate.
	Parent string `json:"parent"`
	// Edits is the ECO script, applied in order.  Empty re-estimates
	// the parent at the given knobs.
	Edits []EditBody `json:"edits,omitempty"`
	// Rows fixes the standard-cell row count (0 = the script's
	// resize_rows default, else §5 automatic).
	Rows int `json:"rows,omitempty"`
	// TrackSharing enables the §7 routing-track-sharing extension.
	TrackSharing bool `json:"track_sharing,omitempty"`
}

// EditBody is one edit of a delta script.  Op selects the edit;
// the other fields are its operands:
//
//	add_net        name, devices   remove_net      name
//	connect_pin    device, net     disconnect_pin  device, net
//	add_cell       name, type, nets
//	remove_cell    name
//	resize_rows    rows            swap_process    process
type EditBody struct {
	Op      string   `json:"op"`
	Name    string   `json:"name,omitempty"`
	Device  string   `json:"device,omitempty"`
	Net     string   `json:"net,omitempty"`
	Type    string   `json:"type,omitempty"`
	Nets    []string `json:"nets,omitempty"`
	Devices []string `json:"devices,omitempty"`
	Rows    int      `json:"rows,omitempty"`
	Process string   `json:"process,omitempty"`
}

// BatchRequest is the POST /v1/estimate/batch payload: a chip's worth
// of modules fanned out through the estimation worker pool.  The
// estimator knobs apply to every module.
type BatchRequest struct {
	Process      string `json:"process,omitempty"`
	Rows         int    `json:"rows,omitempty"`
	TrackSharing bool   `json:"track_sharing,omitempty"`
	// Workers sizes the worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Modules are the circuits to estimate, answered in order.
	Modules []ModuleInput `json:"modules"`
}

// ModuleInput is one circuit of a batch.
type ModuleInput struct {
	Format  string `json:"format,omitempty"`
	Name    string `json:"name,omitempty"`
	Netlist string `json:"netlist"`
}

// SCBody is the standard-cell half of an estimate answer (Eq. 12/14).
type SCBody struct {
	Rows         int     `json:"rows"`
	Tracks       int     `json:"tracks"`
	FeedThroughs int     `json:"feed_throughs"`
	Width        float64 `json:"width_lambda"`
	Height       float64 `json:"height_lambda"`
	Area         float64 `json:"area_lambda2"`
	AspectRatio  float64 `json:"aspect_ratio"`
	PortFeasible bool    `json:"port_feasible"`
}

// FCBody is one full-custom estimate (Eq. 13) in an answer.
type FCBody struct {
	Mode        string  `json:"mode"`
	DeviceArea  float64 `json:"device_area_lambda2"`
	WireArea    float64 `json:"wire_area_lambda2"`
	Area        float64 `json:"area_lambda2"`
	Width       float64 `json:"width_lambda"`
	Height      float64 `json:"height_lambda"`
	AspectRatio float64 `json:"aspect_ratio"`
}

// StatsBody summarizes the §4 estimator inputs of a module.
type StatsBody struct {
	Devices int `json:"devices"`
	Nets    int `json:"routable_nets"`
	Ports   int `json:"ports"`
}

// EstimateResponse is one module's answer.
type EstimateResponse struct {
	Module   string `json:"module"`
	Process  string `json:"process"`
	CacheHit bool   `json:"cache_hit"`
	Key      string `json:"key"`
	// Plan is the compiled plan's content address, present on
	// /v1/estimate and /v1/estimate/delta answers.  It is the handle
	// a subsequent DeltaRequest names as Parent, so an ECO loop chains
	// edit upon edit without ever re-sending netlist source.
	Plan     string    `json:"plan,omitempty"`
	Stats    StatsBody `json:"stats"`
	SC       *SCBody   `json:"standard_cell,omitempty"`
	SCShapes []SCBody  `json:"standard_cell_candidates,omitempty"`
	FCExact  *FCBody   `json:"full_custom_exact,omitempty"`
	FCAvg    *FCBody   `json:"full_custom_average,omitempty"`
}

// BatchResponse answers a batch, modules in request order.
type BatchResponse struct {
	Process   string             `json:"process"`
	CacheHits int                `json:"cache_hits"`
	Modules   []EstimateResponse `json:"modules"`
}

// CongestionRequest is the POST /v1/congestion payload: one circuit
// plus the congestion-analysis knobs.
type CongestionRequest struct {
	Format  string `json:"format,omitempty"`
	Name    string `json:"name,omitempty"`
	Netlist string `json:"netlist"`
	Process string `json:"process,omitempty"`
	// Rows fixes the row count (0 = §5 automatic; for gridded maps 0
	// selects the ⌈√N⌉ default grid).
	Rows int `json:"rows,omitempty"`
	// Gridded selects the full-custom grid variant of the analysis.
	Gridded bool `json:"gridded,omitempty"`
	// Model selects the demand accounting: "occupancy" (default) or
	// "crossing".
	Model string `json:"model,omitempty"`
	// Capacity overrides the per-channel track capacity (0 = derived).
	Capacity int `json:"capacity,omitempty"`
	// FeedBudget overrides the per-row feed-through budget (0 =
	// derived).
	FeedBudget int `json:"feed_budget,omitempty"`
}

// ChannelBody is one channel of a congestion answer.
type ChannelBody struct {
	Index       int     `json:"index"`
	Expected    float64 `json:"expected_tracks"`
	Capacity    int     `json:"capacity"`
	Utilization float64 `json:"utilization"`
	POverflow   float64 `json:"p_overflow"`
}

// RowFeedsBody is one row's feed-through pressure in an answer.
type RowFeedsBody struct {
	Index       int     `json:"index"`
	Expected    float64 `json:"expected_feeds"`
	Budget      int     `json:"budget"`
	POverBudget float64 `json:"p_over_budget"`
}

// HotspotBody is one ranked congestion risk in an answer.
type HotspotBody struct {
	Kind     string  `json:"kind"`
	Index    int     `json:"index"`
	Score    float64 `json:"score"`
	Expected float64 `json:"expected"`
}

// CongestionResponse is one module's congestion map.
type CongestionResponse struct {
	Module         string         `json:"module"`
	Process        string         `json:"process"`
	CacheHit       bool           `json:"cache_hit"`
	Key            string         `json:"key"`
	Model          string         `json:"model"`
	Rows           int            `json:"rows"`
	Gridded        bool           `json:"gridded,omitempty"`
	Nets           int            `json:"nets"`
	ExpectedTracks float64        `json:"expected_tracks"`
	ExpectedFeeds  float64        `json:"expected_feeds"`
	Channels       []ChannelBody  `json:"channels"`
	Feeds          []RowFeedsBody `json:"feeds,omitempty"`
	Hotspots       []HotspotBody  `json:"hotspots,omitempty"`
}

// FloorplanRequest is the POST /v1/floorplan payload: a chip's worth
// of modules plus the global nets connecting them and the annealer
// knobs.  The answer is a job id; the plan itself is fetched from
// GET /v1/jobs/{id} once the anneal completes.
type FloorplanRequest struct {
	// Chip names the chip (defaults to "chip").
	Chip string `json:"chip,omitempty"`
	// Process is a built-in process name; empty selects the server's
	// default.
	Process string `json:"process,omitempty"`
	// Modules are the chip's circuits, each floorplanned as one block.
	Modules []ModuleInput `json:"modules"`
	// Nets are the global interconnections; they drive both the
	// wire-length term and the clustering order.
	Nets []GlobalNetBody `json:"nets,omitempty"`
	// CongestWeight scales the routability term: cost is multiplied
	// by (1 + w·Σ pin-weighted P(overflow)).  Zero scores area/wire
	// only.
	CongestWeight float64 `json:"congest_weight,omitempty"`
	// WireWeight scales the wire-length term (see PlanOptions).
	WireWeight float64 `json:"wire_weight,omitempty"`
	// Seed fixes the annealer's random source (0 selects the
	// planner's default); plans are byte-stable in (request, seed).
	Seed int64 `json:"seed,omitempty"`
	// Budget is the annealing move budget (0 selects the planner's
	// default; negative disables annealing).
	Budget int `json:"budget,omitempty"`
	// Candidates is the shape-candidate count per module (0 selects
	// the planner's default).
	Candidates int `json:"candidates,omitempty"`
	// TrackSharing toggles the §7 routing-track-sharing extension for
	// candidate generation; omitted selects the planner's default
	// (on).
	TrackSharing *bool `json:"track_sharing,omitempty"`
}

// GlobalNetBody is one global net of a floorplan request.
type GlobalNetBody struct {
	Name string          `json:"name"`
	Pins []GlobalPinBody `json:"pins"`
}

// GlobalPinBody is one connection of a global net.
type GlobalPinBody struct {
	Module string `json:"module"`
	Port   string `json:"port,omitempty"`
}

// Job states, in lifecycle order.  A job is terminal in done, failed
// or cancelled; accepted and annealing are in flight.
const (
	JobAccepted  = "accepted"
	JobAnnealing = "annealing"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobResponse is the body of every job-API answer: the submit ack,
// the poll snapshot and the persisted record share this one shape, so
// a GET after a restart is byte-identical to the last GET before it.
type JobResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Iterations and BestCost report annealing progress; they keep
	// their final values on terminal states.
	Iterations int64   `json:"iterations,omitempty"`
	BestCost   float64 `json:"best_cost,omitempty"`
	// Error is set on failed jobs.
	Error string `json:"error,omitempty"`
	// Result is set on done jobs.
	Result *FloorplanResult `json:"result,omitempty"`
}

// FloorplanResult is a finished plan on the wire.
type FloorplanResult struct {
	Chip          string              `json:"chip"`
	Process       string              `json:"process"`
	Width         float64             `json:"width_lambda"`
	Height        float64             `json:"height_lambda"`
	Area          float64             `json:"area_lambda2"`
	Utilization   float64             `json:"utilization"`
	WireLength    float64             `json:"wire_length_lambda"`
	Routability   float64             `json:"routability"`
	Cost          float64             `json:"cost"`
	Seed          int64               `json:"seed"`
	Budget        int                 `json:"budget"`
	CongestWeight float64             `json:"congest_weight"`
	Iterations    int                 `json:"iterations"`
	Blocks        []PlacedBody        `json:"blocks"`
	Congestion    []ModuleCongestBody `json:"congestion,omitempty"`
}

// PlacedBody is one module's slot in a finished plan.
type PlacedBody struct {
	Name       string  `json:"name"`
	X          float64 `json:"x_lambda"`
	Y          float64 `json:"y_lambda"`
	W          float64 `json:"width_lambda"`
	H          float64 `json:"height_lambda"`
	ShapeIndex int     `json:"shape_index"`
	Rows       int     `json:"rows,omitempty"`
}

// ModuleCongestBody is one module's channel overflow risk in the
// winning plan.
type ModuleCongestBody struct {
	Module       string            `json:"module"`
	Rows         int               `json:"rows"`
	POverflowSum float64           `json:"p_overflow_sum"`
	Channels     []ChannelRiskBody `json:"channels"`
}

// ChannelRiskBody is one channel's overflow probability.
type ChannelRiskBody struct {
	Index     int     `json:"index"`
	POverflow float64 `json:"p_overflow"`
}

// ErrorResponse is every non-2xx body.  RequestID and TraceID are
// present whenever request telemetry is enabled, so a client seeing a
// 429/400/500 can quote the exact identifiers an operator needs to
// find the request in the access log and flight recorder — the error
// path is where correlation matters most.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
}

// HealthResponse is the GET /healthz body.  Status is "ok" or
// "degraded"; the watchdog block appears when the accuracy watchdog is
// running.
type HealthResponse struct {
	Status   string          `json:"status"`
	Watchdog *WatchdogHealth `json:"watchdog,omitempty"`
	// Store appears when the persistent store is mounted.
	Store *StoreHealth `json:"store,omitempty"`
}

// StoreHealth is the persistent store's view in /healthz.  Status is
// "ok" or "degraded"; degraded means corrupt records were detected
// and skipped (never served) — answers stay correct, the disk should
// be looked at.
type StoreHealth struct {
	Status             string `json:"status"`
	Segments           int    `json:"segments"`
	Bytes              int64  `json:"bytes"`
	Records            int64  `json:"records"`
	Hits               int64  `json:"hits"`
	Misses             int64  `json:"misses"`
	Compactions        int64  `json:"compactions"`
	LastCompactionUnix int64  `json:"last_compaction_unix,omitempty"`
}

// WatchdogHealth is the accuracy watchdog's view in /healthz.
type WatchdogHealth struct {
	Degraded    bool    `json:"degraded"`
	Probes      int64   `json:"probes"`
	ProbeErrors int64   `json:"probe_errors"`
	MaxDriftPP  float64 `json:"max_drift_pp"`
	Regressions int     `json:"regressions"`
	LastError   string  `json:"last_error,omitempty"`
}

// errBadRequest marks client-side failures that map to HTTP 4xx; its
// absence means a server-side 5xx.
var errBadRequest = errors.New("serve: bad request")

// errBadGateway marks proxy failures reaching the backend (502).
var errBadGateway = errors.New("serve: backend unreachable")

// errUnknownParent marks a delta request whose parent plan is not in
// the plan cache (404): the plan aged out, or the client is talking to
// a different shard.  The defined fallback is a full /v1/estimate.
var errUnknownParent = errors.New("serve: unknown parent plan")

// errUnknownJob marks a job id found neither in memory nor in the
// persistent store (404).
var errUnknownJob = errors.New("serve: unknown job")

func reqErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errBadRequest, fmt.Sprintf(format, args...))
}

// decodeJSON strictly decodes one JSON document from r into v,
// rejecting trailing garbage.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	if err := dec.Decode(v); err != nil {
		// Both %w verbs matter: errBadRequest classifies the failure
		// as 4xx while the original chain keeps http.MaxBytesError
		// reachable for the 413 mapping.
		return fmt.Errorf("%w: decode: %w", errBadRequest, err)
	}
	if dec.More() {
		return reqErr("decode: trailing data after JSON document")
	}
	return nil
}

// parseCircuit turns one module input into a circuit through the
// requested front end.
func parseCircuit(format, name, source string, p *tech.Process) (*netlist.Circuit, error) {
	if strings.TrimSpace(source) == "" {
		return nil, reqErr("empty netlist")
	}
	r := strings.NewReader(source)
	switch format {
	case "", "mnet":
		c, err := hdl.ParseMnet(r)
		if err != nil {
			return nil, reqErr("%v", err)
		}
		return c, nil
	case "bench":
		if name == "" {
			name = "module"
		}
		c, err := hdl.ParseBench(r, name, p)
		if err != nil {
			return nil, reqErr("%v", err)
		}
		return c, nil
	case "verilog":
		c, err := hdl.ParseVerilog(r, p)
		if err != nil {
			return nil, reqErr("%v", err)
		}
		return c, nil
	default:
		return nil, reqErr("unknown format %q (want mnet, bench or verilog)", format)
	}
}

// lookupProcess resolves a request's process name against the
// built-in database, falling back to the server default.
func lookupProcess(name, fallback string) (*tech.Process, string, error) {
	if name == "" {
		name = fallback
	}
	p, err := tech.Lookup(name)
	if err != nil {
		return nil, "", reqErr("%v", err)
	}
	return p, name, nil
}

// parseKey decodes a hex content address from the wire.
func parseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, reqErr("malformed plan key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// decodeEdits turns a wire edit script into the engine's typed edit
// algebra.  Shape errors (unknown op, missing operands, unknown
// process) are 400s; semantic errors (ghost devices, methodology
// mixing, zero rows) are left for Plan.Delta so the delta route
// answers exactly what a full estimate of the edited netlist would.
func decodeEdits(bodies []EditBody) ([]engine.Edit, error) {
	edits := make([]engine.Edit, 0, len(bodies))
	for i, e := range bodies {
		switch e.Op {
		case "add_net":
			if e.Name == "" {
				return nil, reqErr("edit %d: add_net needs a name", i)
			}
			edits = append(edits, engine.AddNet(e.Name, e.Devices...))
		case "remove_net":
			if e.Name == "" {
				return nil, reqErr("edit %d: remove_net needs a name", i)
			}
			edits = append(edits, engine.RemoveNet(e.Name))
		case "connect_pin":
			if e.Device == "" || e.Net == "" {
				return nil, reqErr("edit %d: connect_pin needs device and net", i)
			}
			edits = append(edits, engine.ConnectPin(e.Device, e.Net))
		case "disconnect_pin":
			if e.Device == "" || e.Net == "" {
				return nil, reqErr("edit %d: disconnect_pin needs device and net", i)
			}
			edits = append(edits, engine.DisconnectPin(e.Device, e.Net))
		case "add_cell":
			if e.Name == "" || e.Type == "" {
				return nil, reqErr("edit %d: add_cell needs name and type", i)
			}
			edits = append(edits, engine.AddCell(e.Name, e.Type, e.Nets...))
		case "remove_cell":
			if e.Name == "" {
				return nil, reqErr("edit %d: remove_cell needs a name", i)
			}
			edits = append(edits, engine.RemoveCell(e.Name))
		case "resize_rows":
			edits = append(edits, engine.ResizeRows(e.Rows))
		case "swap_process":
			p, err := tech.Lookup(e.Process)
			if err != nil {
				return nil, reqErr("edit %d: %v", i, err)
			}
			edits = append(edits, engine.SwapProcess(p))
		default:
			return nil, reqErr("edit %d: unknown op %q", i, e.Op)
		}
	}
	return edits, nil
}

// encodeResult converts an estimate into its wire shape.
func encodeResult(res *core.Result, process string, key Key, hit bool) EstimateResponse {
	out := EstimateResponse{
		Module:   res.Module,
		Process:  process,
		CacheHit: hit,
		Key:      key.String(),
		Stats: StatsBody{
			Devices: res.Stats.N,
			Nets:    res.Stats.H,
			Ports:   res.Stats.NumPorts,
		},
	}
	if res.SC != nil {
		sc := encodeSC(res.SC)
		out.SC = &sc
		for _, c := range res.SCCandidates {
			out.SCShapes = append(out.SCShapes, encodeSC(c))
		}
	}
	if res.FCExact != nil {
		out.FCExact = encodeFC(res.FCExact)
	}
	if res.FCAverage != nil {
		out.FCAvg = encodeFC(res.FCAverage)
	}
	return out
}

func encodeSC(sc *core.SCEstimate) SCBody {
	return SCBody{
		Rows:         sc.Rows,
		Tracks:       sc.Tracks,
		FeedThroughs: sc.FeedThroughs,
		Width:        sc.Width,
		Height:       sc.Height,
		Area:         sc.Area,
		AspectRatio:  sc.AspectRatio,
		PortFeasible: sc.PortFeasible,
	}
}

// encodeMap converts a congestion map into its wire shape.  The full
// per-channel distributions stay server-side; clients get the derived
// risk numbers, which is what floorplanner loops consume.
func encodeMap(m *congest.Map, process string, key Key, hit bool) CongestionResponse {
	out := CongestionResponse{
		Module:         m.Module,
		Process:        process,
		CacheHit:       hit,
		Key:            key.String(),
		Model:          m.Model.String(),
		Rows:           m.Rows,
		Gridded:        m.Gridded,
		Nets:           m.Nets,
		ExpectedTracks: m.TotalExpectedTracks,
		ExpectedFeeds:  m.TotalExpectedFeeds,
	}
	for _, ch := range m.Channels {
		out.Channels = append(out.Channels, ChannelBody{
			Index:       ch.Index,
			Expected:    ch.Expected,
			Capacity:    ch.Capacity,
			Utilization: ch.Utilization,
			POverflow:   ch.POverflow,
		})
	}
	for _, rf := range m.Feeds {
		out.Feeds = append(out.Feeds, RowFeedsBody{
			Index:       rf.Index,
			Expected:    rf.Expected,
			Budget:      rf.Budget,
			POverBudget: rf.POverBudget,
		})
	}
	for _, h := range m.Hotspots {
		out.Hotspots = append(out.Hotspots, HotspotBody{
			Kind: h.Kind, Index: h.Index, Score: h.Score, Expected: h.Expected,
		})
	}
	return out
}

func encodeFC(fc *core.FCEstimate) *FCBody {
	return &FCBody{
		Mode:        fc.Mode.String(),
		DeviceArea:  fc.DeviceArea,
		WireArea:    fc.WireArea,
		Area:        fc.Area,
		Width:       fc.Width,
		Height:      fc.Height,
		AspectRatio: fc.AspectRatio,
	}
}
