package serve

import (
	"net/http"
	"strings"
	"testing"
)

// deltaEditedMnet is demo.mnet after the edit script the tests replay:
// remove INV g2, connect g4 to n1, add NAND2 g5.  A full estimate of
// this source and a delta answer for the script must be the same cache
// entry.
const deltaEditedMnet = `
module demo
port in a
port in b
port out y
device g1 NAND2 a b n1
device g3 NOR2 n1 b n3
device g4 NAND2 n2 n3 y n1
device g5 NAND2 n2 b y
end
`

var deltaEditScript = []EditBody{
	{Op: "remove_cell", Name: "g2"},
	{Op: "connect_pin", Device: "g4", Net: "n1"},
	{Op: "add_cell", Name: "g5", Type: "NAND2", Nets: []string{"n2", "b", "y"}},
}

// estimateDemo runs one full estimate of demo.mnet and returns the
// answer (carrying the plan key deltas chain from).
func estimateDemo(t *testing.T, s *Server) EstimateResponse {
	t.Helper()
	body := marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})
	return decodeEstimate(t, do(s, "POST", "/v1/estimate", body))
}

func TestDeltaSharesCacheWithFullEstimate(t *testing.T) {
	s := New(Options{})
	base := estimateDemo(t, s)
	if len(base.Plan) != 64 {
		t.Fatalf("estimate answer plan key %q is not a sha256 hex digest", base.Plan)
	}

	dresp := decodeEstimate(t, do(s, "POST", "/v1/estimate/delta",
		marshal(t, DeltaRequest{Parent: base.Plan, Edits: deltaEditScript})))
	if dresp.CacheHit {
		t.Fatal("first delta reported a cache hit")
	}
	if dresp.Plan == base.Plan || dresp.Key == base.Key {
		t.Fatal("structural edits kept the parent's content addresses")
	}
	if dresp.Stats.Devices != 4 {
		t.Fatalf("edited module has %d devices, want 4", dresp.Stats.Devices)
	}

	// A full estimate of the hand-edited source must hit the delta's
	// cache entry and agree on every byte but the hit flag.
	fresp := decodeEstimate(t, do(s, "POST", "/v1/estimate",
		marshal(t, EstimateRequest{Netlist: deltaEditedMnet})))
	if !fresp.CacheHit {
		t.Fatal("full estimate of the edited netlist missed the delta's cache entry")
	}
	if fresp.Key != dresp.Key || fresp.Plan != dresp.Plan {
		t.Fatalf("delta and full routes disagree on content addresses:\n  delta: key %s plan %s\n  full:  key %s plan %s",
			dresp.Key, dresp.Plan, fresp.Key, fresp.Plan)
	}
	fresp.CacheHit = dresp.CacheHit
	if marshal(t, fresp) != marshal(t, dresp) {
		t.Fatalf("delta answer differs from full estimate:\n%+v\n%+v", dresp, fresp)
	}

	// And the reverse direction: replaying the delta is now a hit.
	again := decodeEstimate(t, do(s, "POST", "/v1/estimate/delta",
		marshal(t, DeltaRequest{Parent: base.Plan, Edits: deltaEditScript})))
	if !again.CacheHit {
		t.Fatal("replayed delta missed the cache")
	}
}

func TestDeltaChainsOnPlanKeys(t *testing.T) {
	s := New(Options{})
	base := estimateDemo(t, s)

	first := decodeEstimate(t, do(s, "POST", "/v1/estimate/delta", marshal(t, DeltaRequest{
		Parent: base.Plan,
		Edits:  []EditBody{{Op: "remove_cell", Name: "g2"}, {Op: "connect_pin", Device: "g4", Net: "n2"}},
	})))
	second := decodeEstimate(t, do(s, "POST", "/v1/estimate/delta", marshal(t, DeltaRequest{
		Parent: first.Plan,
		Edits:  []EditBody{{Op: "add_cell", Name: "g9", Type: "INV", Nets: []string{"n2", "y"}}},
	})))
	if second.Plan == first.Plan || second.Stats.Devices != 4 {
		t.Fatalf("chained delta did not advance the plan: %+v", second)
	}

	// The same two scripts applied in one request land on the same
	// child plan and cache entry.
	oneShot := decodeEstimate(t, do(s, "POST", "/v1/estimate/delta", marshal(t, DeltaRequest{
		Parent: base.Plan,
		Edits: []EditBody{
			{Op: "remove_cell", Name: "g2"},
			{Op: "connect_pin", Device: "g4", Net: "n2"},
			{Op: "add_cell", Name: "g9", Type: "INV", Nets: []string{"n2", "y"}},
		},
	})))
	if !oneShot.CacheHit || oneShot.Key != second.Key || oneShot.Plan != second.Plan {
		t.Fatalf("one-shot script diverged from the chained route: %+v vs %+v", oneShot, second)
	}
}

func TestDeltaRowsSemantics(t *testing.T) {
	s := New(Options{})
	base := estimateDemo(t, s)

	// A resize_rows script answers what WithRows would, under the same
	// cache key an explicit rows=3 request uses — never the automatic-
	// rows key of the same circuit.
	resized := decodeEstimate(t, do(s, "POST", "/v1/estimate/delta",
		marshal(t, DeltaRequest{Parent: base.Plan, Edits: []EditBody{{Op: "resize_rows", Rows: 3}}})))
	if resized.SC == nil || resized.SC.Rows != 3 {
		t.Fatalf("resize_rows(3) answered %+v", resized.SC)
	}
	if resized.Key == base.Key {
		t.Fatal("resized answer collided with the automatic-rows cache entry")
	}
	if resized.Plan != base.Plan {
		t.Fatal("rows-only delta changed the plan key; rows are not plan identity")
	}
	full := decodeEstimate(t, do(s, "POST", "/v1/estimate",
		marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet"), Rows: 3})))
	if !full.CacheHit || full.Key != resized.Key {
		t.Fatal("rows=3 estimate missed the resize_rows(3) delta's cache entry")
	}

	// An explicit request-level rows override beats the script default.
	over := decodeEstimate(t, do(s, "POST", "/v1/estimate/delta", marshal(t, DeltaRequest{
		Parent: base.Plan, Rows: 2,
		Edits: []EditBody{{Op: "resize_rows", Rows: 3}},
	})))
	if over.SC == nil || over.SC.Rows != 2 {
		t.Fatalf("rows=2 override answered %+v", over.SC)
	}

	// The rows-only child must not have replaced the parent in the plan
	// cache: a later delta naming the same parent sees automatic rows.
	plain := decodeEstimate(t, do(s, "POST", "/v1/estimate/delta",
		marshal(t, DeltaRequest{Parent: base.Plan})))
	if plain.Key != base.Key || plain.SC == nil || plain.SC.Rows != base.SC.Rows {
		t.Fatalf("empty delta after resize answered rows %+v, want the parent's %+v", plain.SC, base.SC)
	}
	if !plain.CacheHit {
		t.Fatal("empty delta script missed the parent's cache entry")
	}
}

func TestDeltaSwapProcess(t *testing.T) {
	s := New(Options{})
	base := estimateDemo(t, s)
	resp := decodeEstimate(t, do(s, "POST", "/v1/estimate/delta",
		marshal(t, DeltaRequest{Parent: base.Plan, Edits: []EditBody{{Op: "swap_process", Process: "cmos30"}}})))
	if resp.Process != "cmos30" {
		t.Fatalf("process %q after swap_process, want cmos30", resp.Process)
	}
	if resp.Plan == base.Plan || resp.Key == base.Key {
		t.Fatal("process swap kept the old content addresses")
	}
	full := decodeEstimate(t, do(s, "POST", "/v1/estimate",
		marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet"), Process: "cmos30"})))
	if !full.CacheHit || full.Key != resp.Key || full.Plan != resp.Plan {
		t.Fatal("cmos30 estimate missed the swap_process delta's cache entry")
	}
}

func TestDeltaErrors(t *testing.T) {
	s := New(Options{})
	base := estimateDemo(t, s)

	cases := []struct {
		name   string
		body   string
		status int
		want   string
	}{
		{"unknown parent", marshal(t, DeltaRequest{Parent: strings.Repeat("ab", 32)}),
			http.StatusNotFound, "unknown parent plan"},
		{"malformed parent", marshal(t, DeltaRequest{Parent: "not-hex"}),
			http.StatusBadRequest, "malformed plan key"},
		{"unknown op", marshal(t, DeltaRequest{Parent: base.Plan,
			Edits: []EditBody{{Op: "explode"}}}), http.StatusBadRequest, "unknown op"},
		{"missing operand", marshal(t, DeltaRequest{Parent: base.Plan,
			Edits: []EditBody{{Op: "connect_pin", Device: "g1"}}}), http.StatusBadRequest, "needs device and net"},
		{"unknown process", marshal(t, DeltaRequest{Parent: base.Plan,
			Edits: []EditBody{{Op: "swap_process", Process: "bipolar"}}}), http.StatusBadRequest, ""},
		{"ghost device", marshal(t, DeltaRequest{Parent: base.Plan,
			Edits: []EditBody{{Op: "remove_cell", Name: "ghost"}}}), http.StatusUnprocessableEntity, ""},
		{"bogus type", marshal(t, DeltaRequest{Parent: base.Plan,
			Edits: []EditBody{{Op: "add_cell", Name: "x", Type: "BOGUS", Nets: []string{"a"}}}}),
			http.StatusUnprocessableEntity, ""},
		{"zero rows", marshal(t, DeltaRequest{Parent: base.Plan,
			Edits: []EditBody{{Op: "resize_rows"}}}), http.StatusUnprocessableEntity, ""},
		{"trailing garbage", marshal(t, DeltaRequest{Parent: base.Plan}) + "{}",
			http.StatusBadRequest, "trailing data"},
	}
	for _, tc := range cases {
		w := do(s, "POST", "/v1/estimate/delta", tc.body)
		if w.Code != tc.status {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.status, w.Body.String())
		}
		if tc.want != "" && !strings.Contains(w.Body.String(), tc.want) {
			t.Fatalf("%s: body %q missing %q", tc.name, w.Body.String(), tc.want)
		}
	}

	// Failed scripts leave the parent serviceable.
	after := decodeEstimate(t, do(s, "POST", "/v1/estimate/delta",
		marshal(t, DeltaRequest{Parent: base.Plan})))
	if after.Key != base.Key {
		t.Fatal("parent plan damaged by failed delta scripts")
	}
}
