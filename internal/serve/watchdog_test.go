package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const (
	wdGoldenDir = "../../testdata/golden"
	wdReference = "../../testdata/bench/BENCH_reference.json"
)

func wdOptions() WatchdogOptions {
	return WatchdogOptions{
		Interval:  time.Hour, // tests call Probe directly
		GoldenDir: wdGoldenDir,
		Reference: wdReference,
		TolPP:     0.5,
	}
}

func TestWatchdogCleanProbe(t *testing.T) {
	s := New(Options{Watchdog: wdOptions()})
	wd := s.Watchdog()
	if wd == nil {
		t.Fatal("watchdog not constructed")
	}
	regs := wd.Probe(context.Background())
	if len(regs) != 0 {
		t.Fatalf("clean probe found regressions: %v", regs)
	}
	if wd.Degraded() {
		t.Fatal("clean probe degraded the service")
	}
	h := wd.Health()
	if h.Probes != 1 || h.ProbeErrors != 0 {
		t.Fatalf("health counters %+v, want 1 probe 0 errors", h)
	}
	if h.MaxDriftPP < 0 || h.MaxDriftPP > 0.5 {
		t.Fatalf("max drift %.3fpp out of expected band", h.MaxDriftPP)
	}

	// The probe ran through the live plan cache: every golden circuit's
	// plan is now resident, which is the "warms the serving path"
	// property the watchdog promises.
	if s.PlanCache().Len() == 0 {
		t.Fatal("probe did not populate the plan cache")
	}

	// /healthz reports ok with the watchdog block.
	w := do(s, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz %d: %s", w.Code, w.Body.String())
	}
	var hr HealthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Watchdog == nil || hr.Watchdog.Degraded {
		t.Fatalf("healthz body %+v, want ok with healthy watchdog", hr)
	}

	// The drift gauge is visible in the exposition.
	w = do(s, "GET", "/metrics", "")
	if !strings.Contains(w.Body.String(), "maest_serve_accuracy_drift_pp") {
		t.Fatal("metrics exposition missing maest_serve_accuracy_drift_pp")
	}
}

// TestWatchdogInjectedDriftDegrades perturbs one golden error column
// in a copied golden dir, so the freshly measured estimates appear to
// have drifted ~10pp from "golden" — the watchdog must flip /healthz
// to degraded, and recover when the real goldens return.
func TestWatchdogInjectedDriftDegrades(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"table1.txt", "table2.txt"} {
		b, err := os.ReadFile(filepath.Join(wdGoldenDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Shift fc-rslatch_xtor's golden Err(ex)% by 10 points: the live
	// estimator still produces its real error, so its drift from this
	// doctored golden explodes past tolerance.
	path := filepath.Join(dir, "table1.txt")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(b), "-25.9", "-15.9", 1)
	if doctored == string(b) {
		t.Fatal("golden perturbation found nothing to replace; update the test")
	}
	if err := os.WriteFile(path, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}

	opts := wdOptions()
	opts.GoldenDir = dir
	s := New(Options{Watchdog: opts})
	wd := s.Watchdog()
	regs := wd.Probe(context.Background())
	if len(regs) == 0 {
		t.Fatal("injected drift not detected")
	}
	if !wd.Degraded() {
		t.Fatal("drift beyond tolerance did not degrade the watchdog")
	}
	w := do(s, "GET", "/healthz", "")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d, want 503 when degraded (%s)", w.Code, w.Body.String())
	}
	var hr HealthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" || hr.Watchdog == nil || !hr.Watchdog.Degraded || hr.Watchdog.Regressions == 0 {
		t.Fatalf("healthz body %+v, want degraded watchdog with regressions", hr)
	}
	if mAccuracyDegraded.Value() != 1 {
		t.Fatalf("degraded gauge = %g, want 1", mAccuracyDegraded.Value())
	}

	// Recovery: point back at the true goldens and the next clean probe
	// restores /healthz.
	wd.opts.GoldenDir = wdGoldenDir
	if regs := wd.Probe(context.Background()); len(regs) != 0 {
		t.Fatalf("recovery probe still regressed: %v", regs)
	}
	if wd.Degraded() {
		t.Fatal("watchdog did not recover after a clean probe")
	}
	if w := do(s, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz %d after recovery, want 200", w.Code)
	}
}

func TestWatchdogMissingReferenceDegrades(t *testing.T) {
	opts := wdOptions()
	opts.Reference = filepath.Join(t.TempDir(), "nope.json")
	s := New(Options{Watchdog: opts})
	wd := s.Watchdog()
	wd.Probe(context.Background())
	if !wd.Degraded() {
		t.Fatal("unverifiable accuracy must degrade the service")
	}
	h := wd.Health()
	if h.ProbeErrors != 1 || h.LastError == "" {
		t.Fatalf("health %+v, want 1 probe error with a message", h)
	}
}

func TestWatchdogStartStop(t *testing.T) {
	opts := wdOptions()
	opts.Interval = time.Hour
	s := New(Options{Watchdog: opts})
	wd := s.Watchdog()
	wd.Start()
	wd.Start() // idempotent
	deadline := time.Now().Add(30 * time.Second)
	for wd.Health().Probes == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if wd.Health().Probes == 0 {
		t.Fatal("started watchdog never probed")
	}
	wd.Stop()
	wd.Stop() // idempotent

	var nilWD *Watchdog
	nilWD.Start()
	nilWD.Stop()
	if nilWD.Degraded() || nilWD.Probe(context.Background()) != nil {
		t.Fatal("nil watchdog must be inert")
	}
}
