package serve

import (
	"crypto/sha256"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"maest/internal/store"
)

// openTestStore opens a store in a temp dir and returns it without
// cleanup registration — restart tests own the close ordering.
func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreTierDisabled pins the nil-tier contract: every method is a
// well-defined no-op, mirroring the nil LRU caches.
func TestStoreTierDisabled(t *testing.T) {
	var tier *storeTier
	if _, ok := tier.getResult(Key{}); ok {
		t.Error("nil tier answered a result lookup")
	}
	if _, ok := tier.getCongest(Key{}); ok {
		t.Error("nil tier answered a congestion lookup")
	}
	if _, ok := tier.stats(); ok {
		t.Error("nil tier has stats")
	}
	tier.putResult(Key{}, nil)
	tier.putCongest(Key{}, nil)
	tier.enqueue(store.NSResult, Key{}, nil)
	tier.flush()
	tier.flush()

	s := New(Options{})
	if _, ok := s.StoreStats(); ok {
		t.Error("server without a store reports store stats")
	}
	s.FlushStore()
	w := httptest.NewRecorder()
	s.handleDebugStore(w, httptest.NewRequest("GET", "/debug/store", nil))
	var d DebugStoreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Enabled || d.Stats != nil {
		t.Fatalf("debug/store enabled without a store: %+v", d)
	}
	var h HealthResponse
	if err := json.Unmarshal(do(s, "GET", "/healthz", "").Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Store != nil {
		t.Fatalf("healthz store block without a store: %+v", h.Store)
	}
}

// TestStoreTierUndecodablePayload: a persisted value the current
// schema cannot decode degrades to a miss (the service recomputes and
// overwrites), never to an error or a garbage answer.
func TestStoreTierUndecodablePayload(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	defer st.Close()
	key := Key(sha256.Sum256([]byte("undecodable")))
	if err := st.Put(store.NSResult, store.Key(key), []byte("not json")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(store.NSCongest, store.Key(key), []byte("{")); err != nil {
		t.Fatal(err)
	}
	tier := newStoreTier(st)
	defer tier.flush()
	if _, ok := tier.getResult(key); ok {
		t.Error("undecodable result payload served")
	}
	if _, ok := tier.getCongest(key); ok {
		t.Error("undecodable congestion payload served")
	}
}

// TestStoreTierEnqueueAfterFlushDrops: estimate goroutines can outlive
// a 504'd request and persist after shutdown began; those writes must
// drop with a counter, not panic on a closed channel.
func TestStoreTierEnqueueAfterFlushDrops(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	defer st.Close()
	tier := newStoreTier(st)
	tier.flush()
	drops0 := mStoreWriteDrops.Value()
	tier.enqueue(store.NSResult, Key(sha256.Sum256([]byte("late"))), map[string]int{"a": 1})
	if got := mStoreWriteDrops.Value() - drops0; got != 1 {
		t.Fatalf("drop counter moved by %v, want 1", got)
	}
	tier.flush() // idempotent
}

// TestServeStoreWarmRestart is the package-level warm-start contract:
// a fresh Server over a directory a previous Server populated serves
// estimate, delta, batch, and congestion answers from disk with the
// exact bytes the original computation produced.
func TestServeStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	demo := testdata(t, "demo.mnet")
	est := marshal(t, EstimateRequest{Netlist: demo})
	cong := marshal(t, CongestionRequest{Netlist: demo})

	// Cold instance: compute everything, then flush and close.
	st1 := openTestStore(t, dir)
	s1 := New(Options{Store: st1})
	cold := decodeEstimate(t, do(s1, "POST", "/v1/estimate", est))
	if cold.CacheHit {
		t.Fatal("cold estimate claims a cache hit")
	}
	coldDelta := decodeEstimate(t, do(s1, "POST", "/v1/estimate/delta",
		marshal(t, DeltaRequest{Parent: cold.Plan, Edits: deltaEditScript})))
	coldCongest := do(s1, "POST", "/v1/congestion", cong)
	if coldCongest.Code != 200 {
		t.Fatalf("cold congestion: %d %s", coldCongest.Code, coldCongest.Body.String())
	}
	s1.FlushStore()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm instance: fresh LRUs, same directory.
	st2 := openTestStore(t, dir)
	defer st2.Close()
	s2 := New(Options{Store: st2})
	defer s2.FlushStore()

	warm := decodeEstimate(t, do(s2, "POST", "/v1/estimate", est))
	if !warm.CacheHit {
		t.Fatal("warm estimate not served from the store")
	}
	warm.CacheHit, cold.CacheHit = false, false
	if a, b := marshal(t, warm), marshal(t, cold); a != b {
		t.Fatalf("warm answer differs from fresh computation:\n%s\n%s", a, b)
	}

	// The warm estimate compiled the plan, so the delta chain works
	// across the restart — and the child's result is a store hit too.
	warmDelta := decodeEstimate(t, do(s2, "POST", "/v1/estimate/delta",
		marshal(t, DeltaRequest{Parent: warm.Plan, Edits: deltaEditScript})))
	if !warmDelta.CacheHit {
		t.Fatal("warm delta not served from the store")
	}
	warmDelta.CacheHit, coldDelta.CacheHit = false, false
	if a, b := marshal(t, warmDelta), marshal(t, coldDelta); a != b {
		t.Fatalf("warm delta differs from fresh computation:\n%s\n%s", a, b)
	}

	warmCongest := do(s2, "POST", "/v1/congestion", cong)
	if warmCongest.Code != 200 {
		t.Fatalf("warm congestion: %d %s", warmCongest.Code, warmCongest.Body.String())
	}
	var cc, wc CongestionResponse
	if err := json.Unmarshal(coldCongest.Body.Bytes(), &cc); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(warmCongest.Body.Bytes(), &wc); err != nil {
		t.Fatal(err)
	}
	if !wc.CacheHit {
		t.Fatal("warm congestion not served from the store")
	}
	wc.CacheHit, cc.CacheHit = false, false
	if a, b := marshal(t, wc), marshal(t, cc); a != b {
		t.Fatalf("warm congestion differs from fresh analysis:\n%s\n%s", a, b)
	}

	// The health body carries the store block, status ok.
	var h HealthResponse
	if err := json.Unmarshal(do(s2, "GET", "/healthz", "").Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Store == nil || h.Store.Status != "ok" || h.Store.Hits == 0 {
		t.Fatalf("healthz store block: %+v", h.Store)
	}

	// And the debug endpoint exposes the full snapshot.
	w := httptest.NewRecorder()
	s2.handleDebugStore(w, httptest.NewRequest("GET", "/debug/store", nil))
	var d DebugStoreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if !d.Enabled || d.Stats == nil || d.Stats.Hits == 0 {
		t.Fatalf("debug/store: %+v", d)
	}
}

// TestServeStoreBatchWarm: a warm batch answers every module from the
// store (reported as cached on the wire) after a restart wiped the
// LRUs.
func TestServeStoreBatchWarm(t *testing.T) {
	dir := t.TempDir()
	demo := testdata(t, "demo.mnet")
	batch := marshal(t, BatchRequest{Modules: []ModuleInput{
		{Netlist: demo},
		{Format: "bench", Name: "c17", Netlist: testdata(t, "c17.bench")},
	}})

	st1 := openTestStore(t, dir)
	s1 := New(Options{Store: st1})
	coldW := do(s1, "POST", "/v1/estimate/batch", batch)
	if coldW.Code != 200 {
		t.Fatalf("cold batch: %d %s", coldW.Code, coldW.Body.String())
	}
	var coldResp BatchResponse
	if err := json.Unmarshal(coldW.Body.Bytes(), &coldResp); err != nil {
		t.Fatal(err)
	}
	if coldResp.CacheHits != 0 {
		t.Fatalf("cold batch reports %d cache hits", coldResp.CacheHits)
	}
	s1.FlushStore()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	defer st2.Close()
	s2 := New(Options{Store: st2})
	defer s2.FlushStore()
	warmW := do(s2, "POST", "/v1/estimate/batch", batch)
	if warmW.Code != 200 {
		t.Fatalf("warm batch: %d %s", warmW.Code, warmW.Body.String())
	}
	var warmResp BatchResponse
	if err := json.Unmarshal(warmW.Body.Bytes(), &warmResp); err != nil {
		t.Fatal(err)
	}
	if warmResp.CacheHits != 2 {
		t.Fatalf("warm batch cache hits %d, want 2", warmResp.CacheHits)
	}
	if len(warmResp.Modules) != len(coldResp.Modules) {
		t.Fatalf("warm batch has %d modules, want %d", len(warmResp.Modules), len(coldResp.Modules))
	}
	for i := range warmResp.Modules {
		// The per-module hit flag differs by design; everything else
		// must be byte-identical.
		warmResp.Modules[i].CacheHit, coldResp.Modules[i].CacheHit = false, false
		a, b := marshal(t, warmResp.Modules[i]), marshal(t, coldResp.Modules[i])
		if a != b {
			t.Fatalf("module %d: warm answer differs:\n%s\n%s", i, a, b)
		}
	}
}

// TestStorePlanMetaPersisted: compiling a plan records its metadata
// under the plan's content address, keyed for the inspection CLI.
func TestStorePlanMetaPersisted(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	defer st.Close()
	s := New(Options{Store: st})
	resp := decodeEstimate(t, do(s, "POST", "/v1/estimate",
		marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})))
	s.FlushStore()

	planKey, err := parseKey(resp.Plan)
	if err != nil {
		t.Fatal(err)
	}
	b, ok, err := st.Get(store.NSPlanMeta, store.Key(planKey))
	if err != nil || !ok {
		t.Fatalf("plan metadata not persisted: ok=%v err=%v", ok, err)
	}
	var meta PlanMeta
	if err := json.Unmarshal(b, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Module != "demo" || meta.Devices != resp.Stats.Devices || meta.Process == "" {
		t.Fatalf("plan metadata %+v does not match the answer %+v", meta, resp.Stats)
	}
}
