// Package serve is the long-lived estimation service: the Fig. 1
// pipeline (circuit schematic + process database in, estimate record
// out) behind an HTTP/JSON API, with a content-addressed result cache
// and the production robustness — concurrency limiting, per-request
// timeouts, request-size limits, graceful shutdown — that the
// floorplanner-in-a-loop workload needs.  Floorplanning search loops
// re-evaluate the same module netlists thousands of times per design
// iteration; the cache turns every repeat into a hash lookup.
package serve

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"io"
	"sort"
	"sync"

	"maest/internal/core"
	"maest/internal/netlist"
	"maest/internal/obs"
)

// Cache metrics: the hit ratio is the serving layer's headline number
// — it is what separates "estimator CLI behind a socket" from a
// result store amortizing the floorplanner's repeated queries.
var (
	mCacheHits    = obs.DefCounter("maest_serve_cache_hits_total", "estimate cache hits")
	mCacheMisses  = obs.DefCounter("maest_serve_cache_misses_total", "estimate cache misses")
	mCacheEvicted = obs.DefCounter("maest_serve_cache_evictions_total", "estimate cache LRU evictions")
	mCacheEntries = obs.DefGauge("maest_serve_cache_entries", "estimate cache resident entries")
)

// Key is the content address of one estimate: SHA-256 over the
// canonical form of the circuit plus the process name and estimator
// options.  Two requests with the same key are guaranteed the same
// Result, so the cache can serve either from the other's work.
type Key [sha256.Size]byte

// String returns the key in hex, for logs and debugging.
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// CacheKey computes the content address of an estimate request.  The
// circuit is canonicalized before hashing — ports and devices are
// serialized sorted by name — so the key is invariant under comments,
// whitespace, and declaration order in the source netlist (the
// estimators themselves are order-invariant, so order-insensitive
// keys are safe and catch strictly more repeats).
func CacheKey(c *netlist.Circuit, processName string, opts core.SCOptions) Key {
	h := sha256.New()
	writeCanonical(h, c)
	fmt.Fprintf(h, "process %s\nrows %d\nsharing %t\n", processName, opts.Rows, opts.TrackSharing)
	var k Key
	h.Sum(k[:0])
	return k
}

// writeCanonical emits a deterministic, order-normalized rendering of
// the circuit.  It is close to .mnet but not identical: generated "$"
// names are allowed (they hash fine even though WriteMnet refuses to
// emit them) and entries are sorted rather than in declaration order.
func writeCanonical(w io.Writer, c *netlist.Circuit) {
	fmt.Fprintf(w, "module %s\n", c.Name)
	ports := make([]*netlist.Port, len(c.Ports))
	copy(ports, c.Ports)
	sort.Slice(ports, func(i, j int) bool { return ports[i].Name < ports[j].Name })
	for _, p := range ports {
		fmt.Fprintf(w, "port %s %s %s\n", p.Name, p.Dir, p.Net.Name)
	}
	devices := make([]*netlist.Device, len(c.Devices))
	copy(devices, c.Devices)
	sort.Slice(devices, func(i, j int) bool { return devices[i].Name < devices[j].Name })
	for _, d := range devices {
		fmt.Fprintf(w, "device %s %s", d.Name, d.Type)
		for _, n := range d.Pins {
			if n == nil {
				io.WriteString(w, " -")
			} else {
				fmt.Fprintf(w, " %s", n.Name)
			}
		}
		io.WriteString(w, "\n")
	}
}

// Cache is a fixed-capacity LRU map from content address to estimate
// result.  All methods are safe for concurrent use.  Stored Results
// are shared between callers and must be treated as immutable.
type Cache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *cacheEntry
	entries  map[Key]*list.Element
}

type cacheEntry struct {
	key Key
	res *core.Result
}

// NewCache returns an LRU cache holding at most capacity results;
// capacity < 1 returns a nil cache, on which every method is a
// well-defined no-op (lookups miss, stores are dropped).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		return nil
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[Key]*list.Element, capacity),
	}
}

// Get returns the cached result for k, marking it most recently used.
func (c *Cache) Get(k Key) (*core.Result, bool) {
	if c == nil {
		mCacheMisses.Inc()
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		mCacheMisses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	mCacheHits.Inc()
	return el.Value.(*cacheEntry).res, true
}

// Put stores res under k, evicting the least recently used entry when
// the cache is full.  Storing an existing key refreshes its recency.
func (c *Cache) Put(k Key, res *core.Result) {
	if c == nil || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, res: res})
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		mCacheEvicted.Inc()
	}
	mCacheEntries.Set(float64(c.order.Len()))
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
