// Package serve is the long-lived estimation service: the Fig. 1
// pipeline (circuit schematic + process database in, estimate record
// out) behind an HTTP/JSON API, with a content-addressed result cache
// and the production robustness — concurrency limiting, per-request
// timeouts, request-size limits, graceful shutdown — that the
// floorplanner-in-a-loop workload needs.  Floorplanning search loops
// re-evaluate the same module netlists thousands of times per design
// iteration; the cache turns every repeat into a hash lookup.
package serve

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"io"
	"sync"

	"maest/internal/congest"
	"maest/internal/core"
	"maest/internal/engine"
	"maest/internal/netlist"
	"maest/internal/obs"
)

// Cache metrics: the hit ratio is the serving layer's headline number
// — it is what separates "estimator CLI behind a socket" from a
// result store amortizing the floorplanner's repeated queries.  The
// estimate and congestion caches are separate LRUs with separate
// counters so their hit ratios can be monitored independently.
var (
	estimateCacheMetrics = cacheMetrics{
		hits:     obs.DefCounter("maest_serve_cache_hits_total", "estimate cache hits"),
		misses:   obs.DefCounter("maest_serve_cache_misses_total", "estimate cache misses"),
		evicted:  obs.DefCounter("maest_serve_cache_evictions_total", "estimate cache LRU evictions"),
		resident: obs.DefGauge("maest_serve_cache_entries", "estimate cache resident entries"),
	}
	congestCacheMetrics = cacheMetrics{
		hits:     obs.DefCounter("maest_serve_congest_cache_hits_total", "congestion cache hits"),
		misses:   obs.DefCounter("maest_serve_congest_cache_misses_total", "congestion cache misses"),
		evicted:  obs.DefCounter("maest_serve_congest_cache_evictions_total", "congestion cache LRU evictions"),
		resident: obs.DefGauge("maest_serve_congest_cache_entries", "congestion cache resident entries"),
	}
	planCacheMetrics = cacheMetrics{
		hits:     obs.DefCounter("maest_serve_plan_cache_hits_total", "compiled-plan cache hits"),
		misses:   obs.DefCounter("maest_serve_plan_cache_misses_total", "compiled-plan cache misses"),
		evicted:  obs.DefCounter("maest_serve_plan_cache_evictions_total", "compiled-plan cache LRU evictions"),
		resident: obs.DefGauge("maest_serve_plan_cache_entries", "compiled-plan cache resident entries"),
	}
)

// cacheMetrics is the counter set one lru instance reports to.
type cacheMetrics struct {
	hits, misses, evicted *obs.Counter
	resident              *obs.Gauge
}

// Key is the content address of one estimate: SHA-256 over the
// canonical form of the circuit plus the process name and estimator
// options.  Two requests with the same key are guaranteed the same
// Result, so the cache can serve either from the other's work.
type Key [sha256.Size]byte

// String returns the key in hex, for logs and debugging.
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// CacheKey computes the content address of an estimate request.  The
// circuit is canonicalized before hashing — ports and devices are
// serialized sorted by name — so the key is invariant under comments,
// whitespace, and declaration order in the source netlist (the
// estimators themselves are order-invariant, so order-insensitive
// keys are safe and catch strictly more repeats).
func CacheKey(c *netlist.Circuit, processName string, opts core.SCOptions) Key {
	h := sha256.New()
	writeCanonical(h, c)
	fmt.Fprintf(h, "process %s\nrows %d\nsharing %t\n", processName, opts.Rows, opts.TrackSharing)
	var k Key
	h.Sum(k[:0])
	return k
}

// CongestKey computes the content address of a congestion analysis:
// the same canonical circuit rendering as CacheKey plus every knob the
// map depends on (process, row count, grid variant, demand model,
// capacity and feed budget).
func CongestKey(c *netlist.Circuit, processName string, rows int, gridded bool, opts congest.Options) Key {
	h := sha256.New()
	writeCanonical(h, c)
	fmt.Fprintf(h, "congest %s\nrows %d\ngridded %t\nmodel %s\ncapacity %d\nfeedbudget %d\n",
		processName, rows, gridded, opts.Model, opts.Capacity, opts.FeedBudget)
	var k Key
	h.Sum(k[:0])
	return k
}

// writeCanonical emits the deterministic, order-normalized circuit
// rendering every content address here builds on.  The canonical form
// moved to the engine (plan hashes use the same rendering, which is
// what lets an estimate and a congestion request share one compiled
// plan); the existing key derivations delegate so their values are
// unchanged.
func writeCanonical(w io.Writer, c *netlist.Circuit) {
	engine.WriteCanonicalCircuit(w, c)
}

// lru is a fixed-capacity LRU map from content address to a value.
// All methods are safe for concurrent use, and a nil *lru is a
// well-defined disabled cache (lookups miss, stores are dropped).
// Stored values are shared between callers and must be treated as
// immutable.
type lru[V any] struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *lruEntry[V]
	entries  map[Key]*list.Element
	metrics  cacheMetrics
}

type lruEntry[V any] struct {
	key Key
	val V
}

// newLRU returns an LRU cache holding at most capacity values,
// reporting to the given counter set; capacity < 1 returns nil.
func newLRU[V any](capacity int, metrics cacheMetrics) *lru[V] {
	if capacity < 1 {
		return nil
	}
	return &lru[V]{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[Key]*list.Element, capacity),
		metrics:  metrics,
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *lru[V]) Get(k Key) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.metrics.misses.Inc()
		return zero, false
	}
	c.order.MoveToFront(el)
	c.metrics.hits.Inc()
	return el.Value.(*lruEntry[V]).val, true
}

// Put stores v under k, evicting the least recently used entry when
// the cache is full.  Storing an existing key refreshes its recency.
func (c *lru[V]) Put(k Key, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*lruEntry[V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&lruEntry[V]{key: k, val: v})
	if c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry[V]).key)
		c.metrics.evicted.Inc()
	}
	c.metrics.resident.Set(float64(c.order.Len()))
}

// Len returns the number of resident entries.
func (c *lru[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Cache is the estimate result cache: a fixed-capacity LRU from
// content address to *core.Result.
type Cache = lru[*core.Result]

// CongestCache is the congestion map cache, keyed by CongestKey.
type CongestCache = lru[*congest.Map]

// PlanCache maps plan content addresses (engine.PlanHash) to compiled
// plans, so every endpoint asking about the same circuit under the
// same process shares one compile — the /v1/estimate →
// /v1/congestion repeat costs a hash probe, not a re-parse/re-gather.
type PlanCache = lru[*engine.Plan]

// NewCache returns an estimate LRU cache holding at most capacity
// results; capacity < 1 returns a nil cache, on which every method is
// a well-defined no-op (lookups miss, stores are dropped).
func NewCache(capacity int) *Cache {
	return newLRU[*core.Result](capacity, estimateCacheMetrics)
}

// NewCongestCache is NewCache for congestion maps.
func NewCongestCache(capacity int) *CongestCache {
	return newLRU[*congest.Map](capacity, congestCacheMetrics)
}

// NewPlanCache is NewCache for compiled plans.
func NewPlanCache(capacity int) *PlanCache {
	return newLRU[*engine.Plan](capacity, planCacheMetrics)
}
