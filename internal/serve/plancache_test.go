package serve

import (
	"fmt"
	"testing"
)

// TestEstimateAndCongestionShareOnePlan pins the engine integration's
// headline behavior: asking /v1/estimate and then /v1/congestion
// about the same netlist compiles the circuit exactly once — the
// second endpoint resolves the plan from the content-addressed cache
// and only executes against it.
func TestEstimateAndCongestionShareOnePlan(t *testing.T) {
	s := New(Options{})
	netlist := testdata(t, "demo.mnet")

	hits0, misses0 := planCacheMetrics.hits.Value(), planCacheMetrics.misses.Value()
	decodeEstimate(t, do(s, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: netlist})))
	if n := s.PlanCache().Len(); n != 1 {
		t.Fatalf("plan cache holds %d plans after the estimate, want 1", n)
	}
	if misses := planCacheMetrics.misses.Value() - misses0; misses != 1 {
		t.Fatalf("plan cache misses = %d after the estimate, want 1", misses)
	}

	decodeCongestion(t, do(s, "POST", "/v1/congestion", marshal(t, CongestionRequest{Netlist: netlist})))
	if n := s.PlanCache().Len(); n != 1 {
		t.Fatalf("plan cache holds %d plans after the congestion request, want 1 (shared compile)", n)
	}
	if hits := planCacheMetrics.hits.Value() - hits0; hits != 1 {
		t.Fatalf("plan cache hits = %d after the congestion request, want 1", hits)
	}
	if misses := planCacheMetrics.misses.Value() - misses0; misses != 1 {
		t.Fatalf("plan cache misses = %d after the congestion request, want 1 (no second compile)", misses)
	}

	// The declaration-order-insensitive canonical form extends to the
	// plan cache: a textual variant of the same circuit still shares
	// the compile.
	variant := "# comment\n" + netlist
	decodeCongestion(t, do(s, "POST", "/v1/congestion", marshal(t, CongestionRequest{Netlist: variant, Rows: 2})))
	if n := s.PlanCache().Len(); n != 1 {
		t.Fatalf("plan cache holds %d plans after the textual variant, want 1", n)
	}
}

// TestBatchSharesPlansAcrossRequests pins plan reuse on the batch
// path: modules seen in an earlier single-module request are not
// recompiled by a later batch.
func TestBatchSharesPlansAcrossRequests(t *testing.T) {
	s := New(Options{})
	mk := func(name string) string {
		return fmt.Sprintf("module %s\nport in a\nport out y\ndevice g1 INV a n1\ndevice g2 INV n1 n2\ndevice g3 INV n2 y\nend\n", name)
	}
	decodeEstimate(t, do(s, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: mk("m0")})))
	misses0 := planCacheMetrics.misses.Value()

	w := do(s, "POST", "/v1/estimate/batch", marshal(t, BatchRequest{
		Modules: []ModuleInput{{Netlist: mk("m0")}, {Netlist: mk("m1")}},
	}))
	if w.Code != 200 {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	if misses := planCacheMetrics.misses.Value() - misses0; misses != 1 {
		t.Fatalf("batch compiled %d new plans, want 1 (m0 already compiled)", misses)
	}
	if n := s.PlanCache().Len(); n != 2 {
		t.Fatalf("plan cache holds %d plans, want 2", n)
	}
}
