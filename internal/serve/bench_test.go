package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func benchBody(b *testing.B, name string) string {
	b.Helper()
	body, err := json.Marshal(EstimateRequest{Netlist: benchNetlist(name, 40)})
	if err != nil {
		b.Fatal(err)
	}
	return string(body)
}

func benchNetlist(name string, stages int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\nport in a\n", name)
	prev := "a"
	for i := 0; i < stages; i++ {
		next := fmt.Sprintf("n%d", i)
		fmt.Fprintf(&sb, "device g%d INV %s %s\n", i, prev, next)
		prev = next
	}
	fmt.Fprintf(&sb, "port out %s\nend\n", prev)
	return sb.String()
}

func post(b *testing.B, s *Server, body string) {
	b.Helper()
	req := httptest.NewRequest("POST", "/v1/estimate", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

// BenchmarkEstimateCacheHit measures the hot serving path: identical
// request, answer straight from the content-addressed cache.
func BenchmarkEstimateCacheHit(b *testing.B) {
	s := New(Options{})
	body := benchBody(b, "hot")
	post(b, s, body) // warm the entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(b, s, body)
	}
}

// BenchmarkEstimateCacheMiss measures the cold path — full decode →
// parse → estimate → encode — by disabling the cache so every request
// recomputes.
func BenchmarkEstimateCacheMiss(b *testing.B) {
	s := New(Options{CacheSize: -1})
	body := benchBody(b, "cold")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(b, s, body)
	}
}

// benchInstrument measures the telemetry wrapper around a no-op
// handler, isolating the observatory's own cost from the estimator's.
func benchInstrument(b *testing.B, opts Options) {
	s := New(opts)
	h := s.instrument("/v1/estimate", func(http.ResponseWriter, *http.Request, *reqInfo) {})
	req := httptest.NewRequest("POST", "/v1/estimate", nil)
	var w nullResponseWriter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h(&w, req)
	}
}

// BenchmarkInstrumentDisabled is the acceptance benchmark: with the
// flight recorder and access log off, the per-request instrumentation
// must report 0 allocs/op.
func BenchmarkInstrumentDisabled(b *testing.B) {
	benchInstrument(b, Options{})
}

// BenchmarkInstrumentFlight prices the enabled path (request ID, span
// collection, ring write) for comparison.
func BenchmarkInstrumentFlight(b *testing.B) {
	benchInstrument(b, Options{FlightSize: 256})
}
