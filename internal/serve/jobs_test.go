package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fpRequest builds a floorplan submission over n chained-inverter
// modules with a global net stitching each neighbour pair.
func fpRequest(n int) FloorplanRequest {
	req := FloorplanRequest{Chip: "jobs-chip"}
	for i := 0; i < n; i++ {
		req.Modules = append(req.Modules, batchModule(fmt.Sprintf("fp%d", i), 3+2*i))
	}
	for i := 0; i+1 < n; i++ {
		req.Nets = append(req.Nets, GlobalNetBody{
			Name: fmt.Sprintf("net%d", i),
			Pins: []GlobalPinBody{
				{Module: fmt.Sprintf("fp%d", i), Port: "out"},
				{Module: fmt.Sprintf("fp%d", i+1), Port: "in"},
			},
		})
	}
	return req
}

func decodeJob(t *testing.T, w *httptest.ResponseRecorder) JobResponse {
	t.Helper()
	var resp JobResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad job JSON: %v\n%s", err, w.Body.String())
	}
	return resp
}

func isTerminal(state string) bool {
	return state == JobDone || state == JobFailed || state == JobCancelled
}

// pollJob polls GET /v1/jobs/{id} until the job reaches want.
func pollJob(t *testing.T, s *Server, id, want string) JobResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		w := do(s, "GET", "/v1/jobs/"+id, "")
		if w.Code != http.StatusOK {
			t.Fatalf("poll status %d: %s", w.Code, w.Body.String())
		}
		resp := decodeJob(t, w)
		if resp.State == want {
			return resp
		}
		if isTerminal(resp.State) {
			t.Fatalf("job reached terminal state %q waiting for %q (error %q)",
				resp.State, want, resp.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for state %q, still %q", want, resp.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestJobLifecycleToDone(t *testing.T) {
	s := New(Options{})
	t.Cleanup(s.FlushStore)
	req := fpRequest(3)
	req.Budget = 80
	req.CongestWeight = 1
	w := do(s, "POST", "/v1/floorplan", marshal(t, req))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", w.Code, w.Body.String())
	}
	sub := decodeJob(t, w)
	if len(sub.ID) != 64 || (sub.State != JobAccepted && sub.State != JobAnnealing) {
		t.Fatalf("submit answered %+v", sub)
	}
	fin := pollJob(t, s, sub.ID, JobDone)
	res := fin.Result
	if res == nil {
		t.Fatalf("done job has no result: %+v", fin)
	}
	if len(res.Blocks) != 3 {
		t.Fatalf("%d blocks, want one per module", len(res.Blocks))
	}
	for _, b := range res.Blocks {
		if b.ShapeIndex < 0 || b.Rows < 1 || b.W <= 0 || b.H <= 0 {
			t.Fatalf("bad block %+v", b)
		}
	}
	if len(res.Congestion) != 3 {
		t.Fatalf("congestion detail for %d modules, want 3", len(res.Congestion))
	}
	for _, mc := range res.Congestion {
		if len(mc.Channels) == 0 {
			t.Fatalf("module %s has no per-channel overflow detail", mc.Module)
		}
	}
	if res.Iterations != 80 || res.Cost <= 0 || res.Seed == 0 {
		t.Fatalf("result knobs not echoed: %+v", res)
	}

	// A duplicate submit of the same content answers the existing
	// job with 200, not a second job.
	w = do(s, "POST", "/v1/floorplan", marshal(t, req))
	if w.Code != http.StatusOK {
		t.Fatalf("duplicate submit status %d: %s", w.Code, w.Body.String())
	}
	if dup := decodeJob(t, w); dup.ID != sub.ID || dup.State != JobDone {
		t.Fatalf("duplicate submit answered %+v", dup)
	}
}

func TestJobUnknownAndMalformedID(t *testing.T) {
	s := New(Options{})
	t.Cleanup(s.FlushStore)
	ghost := strings.Repeat("ab", 32) // well-formed 64-hex id, never submitted
	for _, method := range []string{"GET", "DELETE"} {
		if w := do(s, method, "/v1/jobs/"+ghost, ""); w.Code != http.StatusNotFound {
			t.Errorf("%s unknown id: status %d, want 404", method, w.Code)
		}
		if w := do(s, method, "/v1/jobs/not-a-key", ""); w.Code != http.StatusBadRequest {
			t.Errorf("%s malformed id: status %d, want 400", method, w.Code)
		}
	}
}

func TestJobDoubleCancelIdempotent(t *testing.T) {
	s := New(Options{})
	t.Cleanup(s.FlushStore)
	req := fpRequest(3)
	req.Budget = 50_000_000 // will not finish on its own
	w := do(s, "POST", "/v1/floorplan", marshal(t, req))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", w.Code, w.Body.String())
	}
	id := decodeJob(t, w).ID
	pollJob(t, s, id, JobAnnealing)

	first := do(s, "DELETE", "/v1/jobs/"+id, "")
	if first.Code != http.StatusOK {
		t.Fatalf("cancel status %d: %s", first.Code, first.Body.String())
	}
	if resp := decodeJob(t, first); resp.State != JobCancelled {
		t.Fatalf("cancel answered state %q, want cancelled", resp.State)
	}
	second := do(s, "DELETE", "/v1/jobs/"+id, "")
	if second.Code != http.StatusOK {
		t.Fatalf("second cancel status %d: %s", second.Code, second.Body.String())
	}
	if resp := decodeJob(t, second); resp.State != JobCancelled {
		t.Fatalf("second cancel answered state %q, want cancelled", resp.State)
	}
	if resp := decodeJob(t, do(s, "GET", "/v1/jobs/"+id, "")); resp.State != JobCancelled {
		t.Fatalf("poll after cancel: state %q", resp.State)
	}
}

// TestJobRestartRehydrates pins the persistence contract: a finished
// job answered by a fresh process against the same store directory is
// byte-identical to the answer the original process gave.
func TestJobRestartRehydrates(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	s1 := New(Options{Store: st})
	req := fpRequest(3)
	req.Budget = 60
	req.CongestWeight = 0.5
	body := marshal(t, req)
	w := do(s1, "POST", "/v1/floorplan", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", w.Code, w.Body.String())
	}
	id := decodeJob(t, w).ID
	pollJob(t, s1, id, JobDone)
	before := do(s1, "GET", "/v1/jobs/"+id, "").Body.Bytes()
	s1.FlushStore()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	defer st2.Close()
	s2 := New(Options{Store: st2})
	t.Cleanup(s2.FlushStore)
	w = do(s2, "GET", "/v1/jobs/"+id, "")
	if w.Code != http.StatusOK {
		t.Fatalf("poll after restart: status %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), before) {
		t.Fatalf("restart changed the poll answer:\nbefore: %s\nafter:  %s", before, w.Body.Bytes())
	}
	// A resubmit of the same request also answers from the store,
	// without re-annealing.
	w = do(s2, "POST", "/v1/floorplan", body)
	if w.Code != http.StatusOK {
		t.Fatalf("resubmit after restart: status %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), before) {
		t.Fatalf("resubmit after restart diverged:\nbefore: %s\nafter:  %s", before, w.Body.Bytes())
	}
	// Cancelling a rehydrated (terminal) record is a no-op.
	if w := do(s2, "DELETE", "/v1/jobs/"+id, ""); w.Code != http.StatusOK {
		t.Fatalf("cancel rehydrated: status %d", w.Code)
	}
}

func TestJobQueueFull429(t *testing.T) {
	s := New(Options{JobWorkers: 1, JobQueue: 1})
	t.Cleanup(s.FlushStore)
	submit := func(seed int64) *httptest.ResponseRecorder {
		req := fpRequest(3)
		req.Budget = 50_000_000
		req.Seed = seed
		return do(s, "POST", "/v1/floorplan", marshal(t, req))
	}
	wA := submit(101)
	if wA.Code != http.StatusAccepted {
		t.Fatalf("job A status %d: %s", wA.Code, wA.Body.String())
	}
	idA := decodeJob(t, wA).ID
	pollJob(t, s, idA, JobAnnealing) // the lone worker is now occupied

	wB := submit(102) // fills the one queue slot
	if wB.Code != http.StatusAccepted {
		t.Fatalf("job B status %d: %s", wB.Code, wB.Body.String())
	}
	idB := decodeJob(t, wB).ID

	wC := submit(103)
	if wC.Code != http.StatusTooManyRequests {
		t.Fatalf("job C status %d, want 429: %s", wC.Code, wC.Body.String())
	}
	if wC.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Cancelling the queued job takes the accepted→cancelled fast
	// path; the worker later skips it.
	if resp := decodeJob(t, do(s, "DELETE", "/v1/jobs/"+idB, "")); resp.State != JobCancelled {
		t.Fatalf("queued cancel answered %q", resp.State)
	}
	if resp := decodeJob(t, do(s, "DELETE", "/v1/jobs/"+idA, "")); resp.State != JobCancelled {
		t.Fatalf("running cancel answered %q", resp.State)
	}
}

// TestJobManagerHammer drives concurrent submits, polls and cancels
// through the handler stack; run under -race it is the job manager's
// interleaving check.
func TestJobManagerHammer(t *testing.T) {
	s := New(Options{JobWorkers: 4, JobQueue: 64})
	t.Cleanup(s.FlushStore)
	bodies := make([]string, 4)
	for i := range bodies {
		req := fpRequest(3)
		req.Budget = 400
		req.Seed = int64(i + 1)
		bodies[i] = marshal(t, req)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 12; i++ {
				w := do(s, "POST", "/v1/floorplan", bodies[rng.Intn(len(bodies))])
				if w.Code != http.StatusAccepted && w.Code != http.StatusOK &&
					w.Code != http.StatusTooManyRequests {
					t.Errorf("submit status %d: %s", w.Code, w.Body.String())
					return
				}
				if w.Code == http.StatusTooManyRequests {
					continue
				}
				var resp JobResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					t.Errorf("bad submit JSON: %v", err)
					return
				}
				switch rng.Intn(3) {
				case 0:
					do(s, "GET", "/v1/jobs/"+resp.ID, "")
				case 1:
					do(s, "DELETE", "/v1/jobs/"+resp.ID, "")
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFloorplanRequestValidation(t *testing.T) {
	s := New(Options{})
	t.Cleanup(s.FlushStore)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "{broken", http.StatusBadRequest},
		{"no modules", marshal(t, FloorplanRequest{Chip: "x"}), http.StatusBadRequest},
		{"bad process", marshal(t, func() FloorplanRequest {
			r := fpRequest(2)
			r.Process = "unobtainium"
			return r
		}()), http.StatusBadRequest},
		{"bad module netlist", marshal(t, FloorplanRequest{
			Modules: []ModuleInput{{Netlist: "module broken\nthis is not mnet\n"}},
		}), http.StatusBadRequest},
		{"duplicate module", marshal(t, FloorplanRequest{
			Modules: []ModuleInput{batchModule("dup", 3), batchModule("dup", 5)},
		}), http.StatusBadRequest},
		{"net names ghost module", marshal(t, FloorplanRequest{
			Modules: []ModuleInput{batchModule("only", 3)},
			Nets: []GlobalNetBody{{Name: "n", Pins: []GlobalPinBody{
				{Module: "ghost", Port: "p"},
			}}},
		}), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if w := do(s, "POST", "/v1/floorplan", tc.body); w.Code != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, w.Code, tc.want, w.Body.String())
		}
	}
	// The failures above must not have registered any job.
	s.jobs.mu.Lock()
	n := len(s.jobs.jobs)
	s.jobs.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d jobs registered by rejected submits", n)
	}
}

// TestJobSubmitAfterDrain pins the shutdown contract at the handler
// level: once FlushStore has drained the pool, submits shed with 429
// and a queued job left behind was cancelled and persisted.
func TestJobSubmitAfterDrain(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	defer st.Close()
	s := New(Options{Store: st, JobWorkers: 1, JobQueue: 4})
	// Occupy the worker, then park one job in the queue.
	blocker := fpRequest(3)
	blocker.Budget = 50_000_000
	w := do(s, "POST", "/v1/floorplan", marshal(t, blocker))
	if w.Code != http.StatusAccepted {
		t.Fatalf("blocker status %d", w.Code)
	}
	pollJob(t, s, decodeJob(t, w).ID, JobAnnealing)
	queued := fpRequest(3)
	queued.Budget = 50_000_000
	queued.Seed = 7
	w = do(s, "POST", "/v1/floorplan", marshal(t, queued))
	if w.Code != http.StatusAccepted {
		t.Fatalf("queued status %d", w.Code)
	}
	queuedID := decodeJob(t, w).ID

	s.FlushStore()

	// The queued job transitioned to cancelled and was persisted
	// before the store tier flushed.
	if resp := decodeJob(t, do(s, "GET", "/v1/jobs/"+queuedID, "")); resp.State != JobCancelled {
		t.Fatalf("queued job state %q after drain", resp.State)
	}
	if rec, ok := s.stier.getJob(mustKey(t, queuedID)); !ok || rec.State != JobCancelled {
		t.Fatalf("queued job not persisted as cancelled: ok=%v rec=%+v", ok, rec)
	}
	// Submits after drain shed with 429.
	fresh := fpRequest(2)
	if w := do(s, "POST", "/v1/floorplan", marshal(t, fresh)); w.Code != http.StatusTooManyRequests {
		t.Fatalf("submit after drain: status %d, want 429", w.Code)
	}
}

func mustKey(t *testing.T, id string) Key {
	t.Helper()
	k, err := parseKey(id)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestJobEndpointsProxyToBackend pins router mode: the front hop
// forwards the job API verbatim — method, path and job id — so a
// submit through the front and a poll through the front both land on
// the backend's job.
func TestJobEndpointsProxyToBackend(t *testing.T) {
	backend := New(Options{})
	t.Cleanup(backend.FlushStore)
	backendTS := httptest.NewServer(backend)
	defer backendTS.Close()
	front := New(Options{Backend: backendTS.URL})

	req := fpRequest(3)
	req.Budget = 80
	w := do(front, "POST", "/v1/floorplan", marshal(t, req))
	if w.Code != http.StatusAccepted {
		t.Fatalf("front submit status %d: %s", w.Code, w.Body.String())
	}
	id := decodeJob(t, w).ID
	fin := pollJob(t, front, id, JobDone)
	if fin.Result == nil || len(fin.Result.Blocks) != 3 {
		t.Fatalf("front poll answered %+v", fin)
	}
	// Cancel through the front is idempotent on the terminal job.
	if resp := decodeJob(t, do(front, "DELETE", "/v1/jobs/"+id, "")); resp.State != JobDone {
		t.Fatalf("front cancel answered %q", resp.State)
	}
	// Unknown ids 404 through the hop as well.
	if w := do(front, "GET", "/v1/jobs/"+strings.Repeat("cd", 32), ""); w.Code != http.StatusNotFound {
		t.Fatalf("front unknown id: status %d", w.Code)
	}
}
