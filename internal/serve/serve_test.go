package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// do runs one request through the service handler stack.
func do(s *Server, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func marshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func decodeEstimate(t *testing.T, w *httptest.ResponseRecorder) EstimateResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp EstimateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, w.Body.String())
	}
	return resp
}

func TestEstimateAndCacheHit(t *testing.T) {
	s := New(Options{})
	body := marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})

	hits0, misses0 := estimateCacheMetrics.hits.Value(), estimateCacheMetrics.misses.Value()
	first := decodeEstimate(t, do(s, "POST", "/v1/estimate", body))
	if first.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	if first.Module != "demo" || first.Process != "nmos25" {
		t.Fatalf("module %q process %q", first.Module, first.Process)
	}
	if first.SC == nil || first.SC.Area <= 0 || first.FCExact == nil || first.FCExact.Area <= 0 {
		t.Fatalf("incomplete estimate: %+v", first)
	}
	if len(first.Key) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", first.Key)
	}

	second := decodeEstimate(t, do(s, "POST", "/v1/estimate", body))
	if !second.CacheHit {
		t.Fatal("second identical request missed the cache")
	}
	// Identical answers modulo the hit flag.
	second.CacheHit = first.CacheHit
	if marshal(t, first) != marshal(t, second) {
		t.Fatalf("cached answer differs:\n%+v\n%+v", first, second)
	}
	if hits := estimateCacheMetrics.hits.Value() - hits0; hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
	if misses := estimateCacheMetrics.misses.Value() - misses0; misses != 1 {
		t.Fatalf("cache misses = %d, want 1", misses)
	}
}

func TestEstimateTextualVariantsShareOneEntry(t *testing.T) {
	// Comments, blank lines, and declaration order do not change the
	// content address: the variant request is a hit on the original.
	s := New(Options{})
	original := "module v\nport in a\ndevice g1 INV a y1\ndevice g2 INV y1 y2\nend\n"
	variant := "# same circuit, different text\nmodule v\n\nport in a\ndevice g2 INV y1 y2\ndevice g1 INV a y1\nend\n"
	first := decodeEstimate(t, do(s, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: original})))
	second := decodeEstimate(t, do(s, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: variant})))
	if !second.CacheHit {
		t.Fatal("reordered netlist text missed the cache")
	}
	if first.Key != second.Key {
		t.Fatalf("keys differ: %s vs %s", first.Key, second.Key)
	}
}

func TestEstimateFormats(t *testing.T) {
	s := New(Options{})
	bench := decodeEstimate(t, do(s, "POST", "/v1/estimate",
		marshal(t, EstimateRequest{Format: "bench", Name: "c17", Netlist: testdata(t, "c17.bench")})))
	if bench.Module != "c17" || bench.SC == nil {
		t.Fatalf("bench estimate: %+v", bench)
	}
	verilog := decodeEstimate(t, do(s, "POST", "/v1/estimate",
		marshal(t, EstimateRequest{Format: "verilog", Netlist: testdata(t, "fa.v"), Process: "cmos30"})))
	if verilog.Module != "fa" || verilog.Process != "cmos30" {
		t.Fatalf("verilog estimate: %+v", verilog)
	}
}

func TestEstimateClientErrors(t *testing.T) {
	s := New(Options{})
	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed JSON", `{"netlist": `, http.StatusBadRequest},
		{"trailing garbage", `{"netlist":"x"} extra`, http.StatusBadRequest},
		{"empty netlist", `{"netlist":""}`, http.StatusBadRequest},
		{"bad netlist", marshal(t, EstimateRequest{Netlist: "module m\n"}), http.StatusBadRequest},
		{"unknown format", marshal(t, EstimateRequest{Format: "edif", Netlist: "x"}), http.StatusBadRequest},
		{"unknown process", marshal(t, EstimateRequest{Process: "fab9", Netlist: testdata(t, "demo.mnet")}), http.StatusBadRequest},
		{"unknown device type", marshal(t, EstimateRequest{Netlist: "module m\ndevice g WARP a b\nend\n"}), http.StatusUnprocessableEntity},
		{"negative rows", marshal(t, EstimateRequest{Rows: -1, Netlist: testdata(t, "demo.mnet")}), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		w := do(s, "POST", "/v1/estimate", tc.body)
		if w.Code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.status, w.Body.String())
		}
		var e ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tc.name, w.Body.String())
		}
	}
}

func TestRequestSizeLimit(t *testing.T) {
	s := New(Options{MaxRequestBytes: 64})
	body := marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})
	if w := do(s, "POST", "/v1/estimate", body); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", w.Code)
	}
}

func TestEstimateTimeout(t *testing.T) {
	s := New(Options{Timeout: time.Nanosecond})
	w := do(s, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")}))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", w.Code, w.Body.String())
	}
}

func TestConcurrencyLimitSheds429(t *testing.T) {
	acquired := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	s := New(Options{
		MaxConcurrent: 1,
		EstimateHook: func() {
			once.Do(func() {
				close(acquired)
				<-gate
			})
		},
	})
	body := marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})

	rejected0 := mRejected.Value()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if w := do(s, "POST", "/v1/estimate", body); w.Code != http.StatusOK {
			t.Errorf("held request failed: %d %s", w.Code, w.Body.String())
		}
	}()
	<-acquired // the slot is now deterministically held

	w := do(s, "POST", "/v1/estimate/batch",
		marshal(t, BatchRequest{Modules: []ModuleInput{{Netlist: testdata(t, "demo.mnet")}}}))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := mRejected.Value() - rejected0; got != 1 {
		t.Fatalf("rejected counter delta = %d, want 1", got)
	}
	close(gate)
	wg.Wait()
}

func batchModule(name string, stages int) ModuleInput {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\nport in a\n", name)
	prev := "a"
	for i := 0; i < stages; i++ {
		next := fmt.Sprintf("n%d", i)
		fmt.Fprintf(&b, "device g%d INV %s %s\n", i, prev, next)
		prev = next
	}
	fmt.Fprintf(&b, "port out %s\nend\n", prev)
	return ModuleInput{Netlist: b.String()}
}

func TestBatchEstimate(t *testing.T) {
	s := New(Options{})
	req := BatchRequest{Modules: []ModuleInput{
		batchModule("b0", 3),
		batchModule("b1", 5),
		batchModule("b2", 7),
	}}
	w := do(s, "POST", "/v1/estimate/batch", marshal(t, req))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.CacheHits != 0 || len(resp.Modules) != 3 {
		t.Fatalf("hits=%d modules=%d", resp.CacheHits, len(resp.Modules))
	}
	for i, m := range resp.Modules {
		if want := fmt.Sprintf("b%d", i); m.Module != want {
			t.Fatalf("module %d answered as %q, want %q (order lost)", i, m.Module, want)
		}
		if m.CacheHit || m.SC == nil || m.SC.Area <= 0 {
			t.Fatalf("module %d: %+v", i, m)
		}
	}

	// The same batch again is answered entirely from the cache, with
	// per-module results identical to the fresh ones.
	w2 := do(s, "POST", "/v1/estimate/batch", marshal(t, req))
	var resp2 BatchResponse
	if err := json.Unmarshal(w2.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.CacheHits != 3 {
		t.Fatalf("repeat batch cache hits = %d, want 3", resp2.CacheHits)
	}
	for i := range resp2.Modules {
		a, b := resp.Modules[i], resp2.Modules[i]
		b.CacheHit = a.CacheHit
		if marshal(t, a) != marshal(t, b) {
			t.Fatalf("module %d: cached batch answer differs", i)
		}
	}

	// A mixed batch reuses the cached modules and estimates the new one.
	mixed := BatchRequest{Modules: []ModuleInput{req.Modules[1], batchModule("b3", 9)}}
	var resp3 BatchResponse
	if err := json.Unmarshal(do(s, "POST", "/v1/estimate/batch", marshal(t, mixed)).Body.Bytes(), &resp3); err != nil {
		t.Fatal(err)
	}
	if resp3.CacheHits != 1 || !resp3.Modules[0].CacheHit || resp3.Modules[1].CacheHit {
		t.Fatalf("mixed batch: %+v", resp3)
	}
}

func TestBatchErrors(t *testing.T) {
	s := New(Options{})
	if w := do(s, "POST", "/v1/estimate/batch", `{"modules":[]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", w.Code)
	}
	// A malformed module is named by position.
	req := BatchRequest{Modules: []ModuleInput{batchModule("ok", 2), {Netlist: "module broken\n"}}}
	w := do(s, "POST", "/v1/estimate/batch", marshal(t, req))
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "module 1") {
		t.Fatalf("bad module: %d %s", w.Code, w.Body.String())
	}
	// An estimator-level failure names the failing module.
	req = BatchRequest{Modules: []ModuleInput{
		batchModule("ok", 2),
		{Netlist: "module warped\ndevice g WARP a b\nend\n"},
	}}
	w = do(s, "POST", "/v1/estimate/batch", marshal(t, req))
	if w.Code != http.StatusUnprocessableEntity || !strings.Contains(w.Body.String(), "warped") {
		t.Fatalf("estimator failure: %d %s", w.Code, w.Body.String())
	}
}

func TestBatchTimeout(t *testing.T) {
	s := New(Options{Timeout: time.Nanosecond})
	req := BatchRequest{Modules: []ModuleInput{batchModule("t0", 3), batchModule("t1", 4)}}
	w := do(s, "POST", "/v1/estimate/batch", marshal(t, req))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", w.Code, w.Body.String())
	}
}

func TestHealthMetricsAndMethods(t *testing.T) {
	s := New(Options{})
	if w := do(s, "GET", "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	// Warm one estimate so the cache counters exist, then check the
	// exposition carries them.
	do(s, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")}))
	w := do(s, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	for _, name := range []string{
		"maest_serve_cache_hits_total",
		"maest_serve_cache_misses_total",
		"maest_serve_requests_total",
		"maest_serve_request_seconds",
	} {
		if !strings.Contains(w.Body.String(), name) {
			t.Errorf("metrics exposition missing %s", name)
		}
	}
	if w := do(s, "GET", "/v1/estimate", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET estimate: %d, want 405", w.Code)
	}
	if w := do(s, "POST", "/nope", ""); w.Code != http.StatusNotFound {
		t.Fatalf("unknown route: %d, want 404", w.Code)
	}
}
