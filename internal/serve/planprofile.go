package serve

import (
	"sort"
	"sync"
	"time"

	"maest/internal/obs"
)

// Per-plan cost profiles: the online aggregation behind GET
// /debug/plans.  Every instrumented request that resolved to a
// compiled plan folds its outcome into that plan's profile — request
// count, latency distribution, cache/store disposition, estimate-stage
// time — so an operator can ask "which plan is eating the service"
// without replaying the access log.  Profiles live in a bounded map;
// when a fleet of one-off plans would overflow it, the least recently
// seen profile is evicted (the persistent trace store still has the
// history; this is the hot view).

// planProfileCap bounds the profile map.
const planProfileCap = 1024

// planProfile is one plan's accumulating counters.  Latency quantiles
// come from an unregistered histogram so a thousand plans do not
// pollute the Prometheus exposition.
type planProfile struct {
	requests      int64
	errors        int64
	cacheHits     int64
	storeHits     int64
	estimateUsSum int64
	estimateCount int64
	lat           *obs.Histogram
	lastSeen      time.Time
	lastDriftPP   float64
}

// planProfiles is the bounded profile map.  A nil *planProfiles is the
// disabled aggregator (telemetry off): observe is a no-op.
type planProfiles struct {
	mu  sync.Mutex
	m   map[string]*planProfile
	cap int
}

func newPlanProfiles(capacity int) *planProfiles {
	if capacity < 1 {
		capacity = planProfileCap
	}
	return &planProfiles{m: make(map[string]*planProfile, capacity), cap: capacity}
}

// observe folds one finished request into its plan's profile.
func (p *planProfiles) observe(plan string, latSecs float64, failed, cacheHit, storeHit bool, stages []obs.FlightStage, driftPP float64) {
	if p == nil || plan == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pr, ok := p.m[plan]
	if !ok {
		if len(p.m) >= p.cap {
			p.evictOldest()
		}
		pr = &planProfile{lat: obs.NewHistogram(obs.DefBuckets)}
		p.m[plan] = pr
	}
	pr.requests++
	if failed {
		pr.errors++
	}
	if cacheHit {
		pr.cacheHits++
	}
	if storeHit {
		pr.storeHits++
	}
	for _, st := range stages {
		if st.Name == "estimate" || st.Name == "delta" || st.Name == "analyze" {
			pr.estimateUsSum += st.Micros
			pr.estimateCount++
		}
	}
	pr.lat.Observe(latSecs)
	pr.lastSeen = time.Now()
	pr.lastDriftPP = driftPP
}

// evictOldest drops the least recently seen profile (caller holds mu).
func (p *planProfiles) evictOldest() {
	var oldestKey string
	var oldest time.Time
	first := true
	for k, pr := range p.m {
		if first || pr.lastSeen.Before(oldest) {
			oldestKey, oldest, first = k, pr.lastSeen, false
		}
	}
	if oldestKey != "" {
		delete(p.m, oldestKey)
	}
}

// PlanProfile is one plan's profile as GET /debug/plans renders it.
type PlanProfile struct {
	Plan     string `json:"plan"`
	Requests int64  `json:"requests"`
	Errors   int64  `json:"errors"`
	// CacheHitRatio counts memory- and disk-served answers together
	// (the wire's view of "cached"); StoreHitRatio is the disk share.
	CacheHits     int64   `json:"cache_hits"`
	StoreHits     int64   `json:"store_hits"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	StoreHitRatio float64 `json:"store_hit_ratio"`
	P50Seconds    float64 `json:"p50_seconds"`
	P99Seconds    float64 `json:"p99_seconds"`
	// MeanEstimateMicros averages the estimate/delta/analyze stage over
	// the requests that ran one (cache hits skip it).
	MeanEstimateMicros float64 `json:"mean_estimate_us"`
	// LastDriftPP is the accuracy watchdog's max drift (percentage
	// points) as of this plan's most recent request — the "was the
	// service in tolerance when this plan was served" stamp.
	LastDriftPP  float64 `json:"last_drift_pp"`
	LastSeenUnix int64   `json:"last_seen_unix"`
}

// snapshot renders the profiles sorted by request count descending,
// plan hash breaking ties.
func (p *planProfiles) snapshot() []PlanProfile {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]PlanProfile, 0, len(p.m))
	for plan, pr := range p.m {
		pp := PlanProfile{
			Plan:         plan,
			Requests:     pr.requests,
			Errors:       pr.errors,
			CacheHits:    pr.cacheHits,
			StoreHits:    pr.storeHits,
			P50Seconds:   pr.lat.Quantile(0.50),
			P99Seconds:   pr.lat.Quantile(0.99),
			LastDriftPP:  pr.lastDriftPP,
			LastSeenUnix: pr.lastSeen.Unix(),
		}
		if pr.requests > 0 {
			pp.CacheHitRatio = float64(pr.cacheHits) / float64(pr.requests)
			pp.StoreHitRatio = float64(pr.storeHits) / float64(pr.requests)
		}
		if pr.estimateCount > 0 {
			pp.MeanEstimateMicros = float64(pr.estimateUsSum) / float64(pr.estimateCount)
		}
		out = append(out, pp)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		return out[i].Plan < out[j].Plan
	})
	return out
}
