package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// doDebug runs one request through the observatory handler.
func doDebug(t *testing.T, s *Server, path string) []byte {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	s.DebugHandler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("GET %s: %d %s", path, w.Code, w.Body.String())
	}
	return w.Body.Bytes()
}

func TestDebugFlightAfterMixedTraffic(t *testing.T) {
	s := New(Options{FlightSize: 8})
	estimate := marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")})
	congestion := marshal(t, CongestionRequest{Netlist: testdata(t, "demo.mnet"), Rows: 3})
	batch := marshal(t, BatchRequest{Modules: []ModuleInput{batchModule("fl0", 3), batchModule("fl1", 4)}})

	do(s, "POST", "/v1/estimate", estimate)
	do(s, "POST", "/v1/estimate", estimate) // cache hit
	do(s, "POST", "/v1/estimate/batch", batch)
	do(s, "POST", "/v1/congestion", congestion)

	var resp FlightResponse
	if err := json.Unmarshal(doDebug(t, s, "/debug/flight"), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Enabled || resp.Capacity != 8 || resp.Total != 4 || len(resp.Requests) != 4 {
		t.Fatalf("flight header: enabled=%v cap=%d total=%d n=%d",
			resp.Enabled, resp.Capacity, resp.Total, len(resp.Requests))
	}
	// Newest first: congestion, batch, hit, miss.
	wantEndpoints := []string{"/v1/congestion", "/v1/estimate/batch", "/v1/estimate", "/v1/estimate"}
	for i, r := range resp.Requests {
		if r.Endpoint != wantEndpoints[i] {
			t.Fatalf("requests[%d].Endpoint = %q, want %q", i, r.Endpoint, wantEndpoints[i])
		}
		if r.Status != http.StatusOK || r.ID == "" || r.Micros <= 0 {
			t.Fatalf("requests[%d] incomplete: %+v", i, r)
		}
		if len(r.Stages) == 0 {
			t.Fatalf("requests[%d] has no per-stage durations: %+v", i, r)
		}
	}
	// The cache-hit estimate is flagged and shares the miss's digest.
	hit, miss := resp.Requests[2], resp.Requests[3]
	if !hit.CacheHit || miss.CacheHit {
		t.Fatalf("cache flags: hit=%v miss=%v", hit.CacheHit, miss.CacheHit)
	}
	if hit.Digest == "" || hit.Digest != miss.Digest {
		t.Fatalf("digests: hit=%q miss=%q", hit.Digest, miss.Digest)
	}
	// The miss went through the estimator, so its stage list includes
	// the estimate stage and its span summary the pipeline spans.
	stageNames := make(map[string]bool)
	for _, st := range miss.Stages {
		stageNames[st.Name] = true
	}
	if !stageNames["decode"] || !stageNames["parse"] || !stageNames["estimate"] {
		t.Fatalf("miss stages missing decode/parse/estimate: %+v", miss.Stages)
	}
	var rootSpans int
	for _, sp := range miss.Spans {
		if sp.Name == "request" && sp.Depth == 0 {
			rootSpans++
		}
	}
	if rootSpans != 1 {
		t.Fatalf("miss span summary has %d root request spans, want 1: %+v", rootSpans, miss.Spans)
	}

	// Per-endpoint latency quantiles ride along.
	if len(resp.Latency) != 6 {
		t.Fatalf("latency section has %d endpoints, want 6", len(resp.Latency))
	}
	for _, ep := range resp.Latency {
		if ep.Endpoint == "/v1/estimate" && ep.Count < 2 {
			t.Fatalf("estimate endpoint count = %d, want ≥ 2", ep.Count)
		}
	}

	// ?n= truncates to the newest n.
	var truncated FlightResponse
	if err := json.Unmarshal(doDebug(t, s, "/debug/flight?n=2"), &truncated); err != nil {
		t.Fatal(err)
	}
	if len(truncated.Requests) != 2 || truncated.Requests[0].Endpoint != "/v1/congestion" {
		t.Fatalf("?n=2: %+v", truncated.Requests)
	}
}

func TestDebugSlowest(t *testing.T) {
	s := New(Options{FlightSize: 16})
	// A heavier netlist takes longer than the tiny ones; the slowest
	// listing must lead with longer durations.
	do(s, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: benchNetlist("big", 60)}))
	for i := 0; i < 3; i++ {
		do(s, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: benchNetlist("small", 2)}))
	}
	var resp SlowestResponse
	if err := json.Unmarshal(doDebug(t, s, "/debug/slowest?k=2"), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Enabled || len(resp.Requests) != 2 {
		t.Fatalf("slowest: enabled=%v n=%d", resp.Enabled, len(resp.Requests))
	}
	if resp.Requests[0].Micros < resp.Requests[1].Micros {
		t.Fatalf("not sorted by duration: %d then %d", resp.Requests[0].Micros, resp.Requests[1].Micros)
	}
	if len(resp.Requests[0].Spans) == 0 {
		t.Fatal("slowest entry has no span breakdown")
	}
}

func TestDebugDisabledFlight(t *testing.T) {
	s := New(Options{}) // FlightSize 0 → recorder off
	var resp FlightResponse
	if err := json.Unmarshal(doDebug(t, s, "/debug/flight"), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Enabled || resp.Capacity != 0 || len(resp.Requests) != 0 {
		t.Fatalf("disabled flight: %+v", resp)
	}
	if len(resp.Latency) != 6 {
		t.Fatalf("latency section should still render: %+v", resp.Latency)
	}
	body := doDebug(t, s, "/debug/slowest")
	if !strings.Contains(string(body), `"enabled":false`) {
		t.Fatalf("slowest on disabled recorder: %s", body)
	}
}

func TestDebugFlightEvictionOverHTTP(t *testing.T) {
	s := New(Options{FlightSize: 2})
	for i := 0; i < 5; i++ {
		do(s, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: testdata(t, "demo.mnet")}))
	}
	var resp FlightResponse
	if err := json.Unmarshal(doDebug(t, s, "/debug/flight"), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 5 || len(resp.Requests) != 2 {
		t.Fatalf("total=%d resident=%d, want 5/2", resp.Total, len(resp.Requests))
	}
	// Newest first means descending, contiguous sequence numbers.
	if resp.Requests[0].Seq != 4 || resp.Requests[1].Seq != 3 {
		t.Fatalf("seqs %d,%d want 4,3", resp.Requests[0].Seq, resp.Requests[1].Seq)
	}
}
