package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
)

func decodeCongestion(t *testing.T, w *httptest.ResponseRecorder) CongestionResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp CongestionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, w.Body.String())
	}
	return resp
}

func TestCongestionAndCacheHit(t *testing.T) {
	s := New(Options{})
	body := marshal(t, CongestionRequest{Netlist: testdata(t, "demo.mnet"), Rows: 3, Model: "crossing"})

	hits0, misses0 := congestCacheMetrics.hits.Value(), congestCacheMetrics.misses.Value()
	first := decodeCongestion(t, do(s, "POST", "/v1/congestion", body))
	if first.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	if first.Module != "demo" || first.Model != "crossing" || first.Rows != 3 {
		t.Fatalf("header %+v", first)
	}
	if len(first.Channels) != 4 || len(first.Feeds) != 3 {
		t.Fatalf("%d channels, %d feed rows, want 4/3", len(first.Channels), len(first.Feeds))
	}
	if first.ExpectedTracks <= 0 || len(first.Hotspots) == 0 {
		t.Fatalf("empty map: %+v", first)
	}
	for _, ch := range first.Channels {
		if ch.POverflow < 0 || ch.POverflow > 1 || math.IsNaN(ch.Utilization) {
			t.Fatalf("channel %d: overflow %g util %g", ch.Index, ch.POverflow, ch.Utilization)
		}
	}
	if len(first.Key) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", first.Key)
	}

	second := decodeCongestion(t, do(s, "POST", "/v1/congestion", body))
	if !second.CacheHit {
		t.Fatal("second identical request missed the cache")
	}
	second.CacheHit = first.CacheHit
	if marshal(t, first) != marshal(t, second) {
		t.Fatalf("cached answer differs:\n%+v\n%+v", first, second)
	}
	if hits := congestCacheMetrics.hits.Value() - hits0; hits != 1 {
		t.Fatalf("congest cache hits = %d, want 1", hits)
	}
	if misses := congestCacheMetrics.misses.Value() - misses0; misses != 1 {
		t.Fatalf("congest cache misses = %d, want 1", misses)
	}
}

// The congestion and estimate caches are separate: the same circuit
// through both endpoints never collides.
func TestCongestionDoesNotShareEstimateCache(t *testing.T) {
	s := New(Options{})
	netlist := testdata(t, "demo.mnet")
	decodeEstimate(t, do(s, "POST", "/v1/estimate", marshal(t, EstimateRequest{Netlist: netlist, Rows: 3})))
	resp := decodeCongestion(t, do(s, "POST", "/v1/congestion", marshal(t, CongestionRequest{Netlist: netlist, Rows: 3})))
	if resp.CacheHit {
		t.Fatal("congestion answer claimed a hit from the estimate cache")
	}
	if s.Cache().Len() != 1 || s.CongestCache().Len() != 1 {
		t.Fatalf("cache sizes %d/%d, want 1/1", s.Cache().Len(), s.CongestCache().Len())
	}
}

// Analysis knobs participate in the congestion key: changing the
// model, capacity, or grid variant is a miss, not a stale hit.
func TestCongestionKeyCoversOptions(t *testing.T) {
	s := New(Options{})
	netlist := testdata(t, "demo.mnet")
	base := CongestionRequest{Netlist: netlist, Rows: 3}
	variants := []CongestionRequest{
		{Netlist: netlist, Rows: 3, Model: "crossing"},
		{Netlist: netlist, Rows: 4},
		{Netlist: netlist, Rows: 3, Capacity: 7},
		{Netlist: netlist, Rows: 3, FeedBudget: 9},
		{Netlist: netlist, Rows: 3, Gridded: true},
	}
	seen := map[string]bool{decodeCongestion(t, do(s, "POST", "/v1/congestion", marshal(t, base))).Key: true}
	for i, v := range variants {
		resp := decodeCongestion(t, do(s, "POST", "/v1/congestion", marshal(t, v)))
		if resp.CacheHit {
			t.Errorf("variant %d hit another variant's cache entry", i)
		}
		if seen[resp.Key] {
			t.Errorf("variant %d reused key %s", i, resp.Key)
		}
		seen[resp.Key] = true
	}
}

func TestCongestionGridded(t *testing.T) {
	s := New(Options{})
	resp := decodeCongestion(t, do(s, "POST", "/v1/congestion",
		marshal(t, CongestionRequest{Netlist: testdata(t, "demo.mnet"), Gridded: true})))
	if !resp.Gridded || resp.Rows < 1 {
		t.Fatalf("gridded map header %+v", resp)
	}
	if len(resp.Feeds) != 0 {
		t.Fatal("gridded map carries feed-through rows")
	}
}

// Unfixed rows resolve through the §5 initialization, and the answer
// reports the resolved count rather than the request's zero.
func TestCongestionAutomaticRows(t *testing.T) {
	s := New(Options{})
	resp := decodeCongestion(t, do(s, "POST", "/v1/congestion",
		marshal(t, CongestionRequest{Netlist: testdata(t, "demo.mnet")})))
	if resp.Rows < 1 {
		t.Fatalf("automatic rows resolved to %d", resp.Rows)
	}
	if len(resp.Channels) != resp.Rows+1 {
		t.Fatalf("%d channels for %d rows", len(resp.Channels), resp.Rows)
	}
}

func TestCongestionRejectsBadRequests(t *testing.T) {
	s := New(Options{})
	netlist := testdata(t, "demo.mnet")
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"empty netlist", marshal(t, CongestionRequest{}), http.StatusBadRequest},
		{"bad model", marshal(t, CongestionRequest{Netlist: netlist, Model: "psychic"}), http.StatusBadRequest},
		{"negative rows", marshal(t, CongestionRequest{Netlist: netlist, Rows: -2}), http.StatusBadRequest},
		{"bad process", marshal(t, CongestionRequest{Netlist: netlist, Process: "tube"}), http.StatusBadRequest},
		{"bad netlist", marshal(t, CongestionRequest{Netlist: "module x\nnonsense\nend\n"}), http.StatusBadRequest},
	}
	for _, c := range cases {
		if w := do(s, "POST", "/v1/congestion", c.body); w.Code != c.want {
			t.Errorf("%s: status %d, want %d: %s", c.name, w.Code, c.want, w.Body.String())
		}
	}
}

// The congestion endpoint shares the concurrency limiter with the
// estimate endpoints and sheds with the configured Retry-After.
func TestCongestionOverloadSheds(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	s := New(Options{MaxConcurrent: 1, RetryAfter: 7, EstimateHook: func() {
		entered <- struct{}{}
		<-release
	}})
	body := marshal(t, CongestionRequest{Netlist: testdata(t, "demo.mnet"), Rows: 2})
	done := make(chan *httptest.ResponseRecorder)
	go func() { done <- do(s, "POST", "/v1/congestion", body) }()
	<-entered

	w := do(s, "POST", "/v1/congestion", body)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d under overload, want 429", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After %q, want configured 7", got)
	}
	close(release)
	decodeCongestion(t, <-done)
}
