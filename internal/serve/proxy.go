package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"time"

	"maest/internal/obs"
)

// Forwarding mode: a Server configured with Options.Backend answers
// the /v1/* endpoints by relaying them to another maest-serve instance
// instead of estimating locally.  This is the maest-router building
// block — a front hop that will grow sharding and replica selection —
// and the vehicle proving that a trace survives the process boundary:
// the hop re-injects its own span id as the outgoing traceparent
// parent, so the backend's flight record stitches under this hop's.

var (
	mProxyRequests = obs.DefCounter("maest_serve_proxy_requests_total", "requests forwarded to the backend")
	mProxyErrors   = obs.DefCounter("maest_serve_proxy_errors_total", "forwards that failed to reach the backend")
	mProxySec      = obs.DefHistogram("maest_serve_proxy_seconds", "backend round-trip latency", obs.DefBuckets)
)

// proxyTo returns an instrumented handler forwarding one POST
// endpoint to the configured backend.
func (s *Server) proxyTo(endpoint string) func(http.ResponseWriter, *http.Request, *reqInfo) {
	return func(w http.ResponseWriter, r *http.Request, info *reqInfo) {
		s.forward(w, r, info, http.MethodPost, s.opts.Backend+endpoint)
	}
}

// proxyPath returns an instrumented handler forwarding the request's
// own method and path to the backend — what the job endpoints need,
// where GET and DELETE address a job id minted by the backend.
func (s *Server) proxyPath() func(http.ResponseWriter, *http.Request, *reqInfo) {
	return func(w http.ResponseWriter, r *http.Request, info *reqInfo) {
		s.forward(w, r, info, r.Method, s.opts.Backend+r.URL.Path)
	}
}

// forward relays one request to the backend, re-injecting the W3C
// traceparent so the trace survives the extra hop.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, info *reqInfo, method, target string) {
	mProxyRequests.Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxRequestBytes))
	if err != nil {
		s.fail(w, info, fmt.Errorf("%w: read body: %w", errBadRequest, err))
		return
	}
	info.mark("read")

	ctx := r.Context()
	req, err := http.NewRequestWithContext(ctx, method, target, bytes.NewReader(body))
	if err != nil {
		s.fail(w, info, fmt.Errorf("%w: %v", errBadGateway, err))
		return
	}
	req.Header.Set("Content-Type", "application/json")
	// Continue the trace: the hop's own context (installed in ctx by
	// instrument) becomes the outgoing traceparent, making this
	// hop's span id the backend's parent.  When telemetry is
	// disabled here, fall back to relaying the caller's header so
	// the ends of the chain still stitch.
	if tc, ok := obs.TraceContextFrom(ctx); ok {
		req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	} else if hdr := r.Header.Get(obs.TraceparentHeader); hdr != "" {
		req.Header.Set(obs.TraceparentHeader, hdr)
	}

	_, span := obs.Start(ctx, "proxy")
	span.SetString("backend", s.opts.Backend)
	t0 := time.Now()
	resp, err := s.proxy.Do(req)
	mProxySec.Observe(time.Since(t0).Seconds())
	span.EndErr(err)
	if err != nil {
		mProxyErrors.Inc()
		s.fail(w, info, fmt.Errorf("%w: %v", errBadGateway, err))
		return
	}
	defer resp.Body.Close()
	info.mark("backend")

	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	if resp.StatusCode >= 400 {
		info.fail(fmt.Errorf("serve: backend answered %d", resp.StatusCode))
	}
}
