package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"maest/internal/core"
	"maest/internal/hdl"
	"maest/internal/netlist"
	"maest/internal/tech"
)

func mustParse(t *testing.T, src string) *netlist.Circuit {
	t.Helper()
	c, err := hdl.ParseMnet(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheKeyCanonicalization(t *testing.T) {
	base := mustParse(t, "module k\nport in a\ndevice g1 INV a y1\ndevice g2 INV y1 y2\nend\n")
	reordered := mustParse(t, "# noise\nmodule k\n\nport in a\ndevice g2 INV y1 y2\ndevice g1 INV a y1\nend\n")
	opts := core.SCOptions{}
	if CacheKey(base, "nmos25", opts) != CacheKey(reordered, "nmos25", opts) {
		t.Fatal("declaration order changed the content address")
	}

	// Every estimation input participates in the key.
	distinct := map[Key]string{CacheKey(base, "nmos25", opts): "base"}
	for name, k := range map[string]Key{
		"process": CacheKey(base, "cmos30", opts),
		"rows":    CacheKey(base, "nmos25", core.SCOptions{Rows: 3}),
		"sharing": CacheKey(base, "nmos25", core.SCOptions{TrackSharing: true}),
		"module name": CacheKey(mustParse(t,
			"module k2\nport in a\ndevice g1 INV a y1\ndevice g2 INV y1 y2\nend\n"), "nmos25", opts),
		"connectivity": CacheKey(mustParse(t,
			"module k\nport in a\ndevice g1 INV a y1\ndevice g2 INV a y2\nend\n"), "nmos25", opts),
	} {
		if prev, dup := distinct[k]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		distinct[k] = name
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = Key{byte(i)}
		c.Put(keys[i], &core.Result{Module: fmt.Sprintf("m%d", i)})
	}
	// Capacity 2: key 0 is the LRU victim of inserting key 2.
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := c.Get(keys[1]); !ok {
		t.Fatal("recent entry evicted")
	}
	// Touching key 1 makes key 2 the next victim.
	c.Put(Key{9}, &core.Result{Module: "m9"})
	if _, ok := c.Get(keys[2]); ok {
		t.Fatal("LRU order ignores recency of use")
	}
	if _, ok := c.Get(keys[1]); !ok {
		t.Fatal("most recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestCacheDisabledAndRefresh(t *testing.T) {
	var nilCache *Cache
	nilCache.Put(Key{1}, &core.Result{})
	if _, ok := nilCache.Get(Key{1}); ok {
		t.Fatal("nil cache returned a hit")
	}
	if NewCache(0) != nil || NewCache(-5) != nil {
		t.Fatal("non-positive capacity did not disable the cache")
	}

	c := NewCache(1)
	c.Put(Key{1}, &core.Result{Module: "old"})
	c.Put(Key{1}, &core.Result{Module: "new"})
	if c.Len() != 1 {
		t.Fatalf("len = %d after re-put", c.Len())
	}
	if res, _ := c.Get(Key{1}); res.Module != "new" {
		t.Fatalf("re-put kept the stale value %q", res.Module)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{byte(i % 32)}
				if i%3 == 0 {
					c.Put(k, &core.Result{Module: fmt.Sprintf("g%d", g)})
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache overflowed capacity: %d", c.Len())
	}
}

// The key must be stable against tech-process pointer identity: only
// the name participates, so two lookups of the same process agree.
func TestCacheKeyProcessByName(t *testing.T) {
	c := mustParse(t, "module k\nport in a\ndevice g1 INV a y\nend\n")
	p1, p2 := tech.NMOS25(), tech.NMOS25()
	if p1 == p2 {
		t.Fatal("expected distinct process instances")
	}
	if CacheKey(c, p1.Name, core.SCOptions{}) != CacheKey(c, p2.Name, core.SCOptions{}) {
		t.Fatal("identical processes hashed differently")
	}
}
