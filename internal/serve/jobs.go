package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"maest/internal/engine"
	"maest/internal/floorplan"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/tech"
)

// The async floorplan job subsystem.  POST /v1/floorplan validates
// and content-addresses the request synchronously, then hands the
// anneal to a bounded worker pool; GET /v1/jobs/{id} polls progress
// (accepted → annealing with live iteration count and best cost →
// done/failed/cancelled) and DELETE /v1/jobs/{id} cancels.  Finished
// jobs persist write-behind into store.NSFloorplan under the job id,
// so a completed plan survives a restart and polls rehydrate from
// disk, byte-identical.
var (
	mJobsSubmitted = obs.DefCounter("maest_serve_jobs_submitted_total", "floorplan jobs accepted")
	mJobsDone      = obs.DefCounter("maest_serve_jobs_done_total", "floorplan jobs finished successfully")
	mJobsFailed    = obs.DefCounter("maest_serve_jobs_failed_total", "floorplan jobs finished in error")
	mJobsCancelled = obs.DefCounter("maest_serve_jobs_cancelled_total", "floorplan jobs cancelled")
	mJobsRejected  = obs.DefCounter("maest_serve_jobs_rejected_total", "floorplan jobs shed with 429 (queue full or draining)")
	gJobsRunning   = obs.DefGauge("maest_serve_jobs_running", "floorplan jobs currently annealing")
	mJobSec        = obs.DefHistogram("maest_serve_job_seconds", "floorplan job wall time", obs.DefBuckets)
)

// jobConfig is the resolved annealer knob set of one job.
type jobConfig struct {
	congestWeight float64
	wireWeight    float64
	seed          int64
	budget        int
	candidates    int
	trackSharing  bool
}

// job is one floorplan request moving through the lifecycle.  The
// mutex guards state and progress; inputs are immutable after submit
// and the result is immutable after the terminal transition.
type job struct {
	id  string
	key Key

	chip     string
	procName string
	proc     *tech.Process
	circs    []*netlist.Circuit
	nets     []floorplan.Net
	cfg      jobConfig

	mu         sync.Mutex
	state      string
	iterations int64
	bestCost   float64
	errMsg     string
	result     *FloorplanResult
	cancelFn   context.CancelFunc

	done chan struct{} // closed on the terminal transition
}

// snapshot renders the job's current lifecycle view — the one shape
// every job-API answer and the persisted record share.
func (j *job) snapshot() *JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &JobResponse{
		ID:         j.id,
		State:      j.state,
		Iterations: j.iterations,
		BestCost:   j.bestCost,
		Error:      j.errMsg,
		Result:     j.result,
	}
}

// jobManager runs the worker pool.  Workers start lazily on the first
// submit, so servers that never see a floorplan job spawn no
// goroutines; drain stops the pool and is what FlushStore calls, so
// no job goroutine survives it.
type jobManager struct {
	s       *Server
	queue   chan *job
	workers int
	ctx     context.Context
	cancel  context.CancelFunc

	start     sync.Once
	wg        sync.WaitGroup
	drainOnce sync.Once

	mu       sync.Mutex
	jobs     map[string]*job
	draining bool
}

func newJobManager(s *Server, workers, queueLen int) *jobManager {
	ctx, cancel := context.WithCancel(context.Background())
	return &jobManager{
		s:       s,
		queue:   make(chan *job, queueLen),
		workers: workers,
		ctx:     ctx,
		cancel:  cancel,
		jobs:    map[string]*job{},
	}
}

// errJobQueueFull marks a submit shed because the queue is full or the
// manager is draining; the handler answers 429 with Retry-After.
var errJobQueueFull = errors.New("serve: job queue full")

// submit registers a job and enqueues it.  Submits are idempotent in
// the job id (the content address of the request): a duplicate submit
// answers the existing job's snapshot, and a finished record from a
// previous process life answers straight from the store.
func (jm *jobManager) submit(j *job) (*JobResponse, int, error) {
	jm.mu.Lock()
	if existing, ok := jm.jobs[j.id]; ok {
		jm.mu.Unlock()
		return existing.snapshot(), http.StatusOK, nil
	}
	draining := jm.draining
	jm.mu.Unlock()
	if draining {
		return nil, 0, errJobQueueFull
	}
	if rec, ok := jm.persisted(j.key); ok {
		return rec, http.StatusOK, nil
	}
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if existing, ok := jm.jobs[j.id]; ok {
		return existing.snapshot(), http.StatusOK, nil
	}
	if jm.draining {
		return nil, 0, errJobQueueFull
	}
	jm.jobs[j.id] = j
	select {
	case jm.queue <- j:
	default:
		delete(jm.jobs, j.id)
		return nil, 0, errJobQueueFull
	}
	jm.start.Do(func() {
		for i := 0; i < jm.workers; i++ {
			jm.wg.Add(1)
			go jm.worker()
		}
	})
	mJobsSubmitted.Inc()
	return j.snapshot(), http.StatusAccepted, nil
}

// get answers a poll: memory first, then the persistent store.
func (jm *jobManager) get(id string) (*JobResponse, error) {
	jm.mu.Lock()
	j, ok := jm.jobs[id]
	jm.mu.Unlock()
	if ok {
		return j.snapshot(), nil
	}
	key, err := parseKey(id)
	if err != nil {
		return nil, err
	}
	if rec, ok := jm.persisted(key); ok {
		return rec, nil
	}
	return nil, fmt.Errorf("%w: %s", errUnknownJob, id)
}

// cancelJob cancels a job.  Terminal jobs (including already
// cancelled ones) answer their snapshot unchanged, which is what
// makes double-cancel idempotent; queued jobs transition immediately;
// running jobs get their context cancelled and the call waits briefly
// for the anneal loop to notice (it checks every move).
func (jm *jobManager) cancelJob(ctx context.Context, id string) (*JobResponse, error) {
	jm.mu.Lock()
	j, ok := jm.jobs[id]
	jm.mu.Unlock()
	if !ok {
		key, err := parseKey(id)
		if err != nil {
			return nil, err
		}
		if rec, ok := jm.persisted(key); ok {
			// Persisted records are terminal by construction: cancel is
			// a no-op.
			return rec, nil
		}
		return nil, fmt.Errorf("%w: %s", errUnknownJob, id)
	}
	j.mu.Lock()
	switch j.state {
	case JobAccepted:
		j.state = JobCancelled
		close(j.done)
		j.mu.Unlock()
		mJobsCancelled.Inc()
		jm.persist(j)
		return j.snapshot(), nil
	case JobAnnealing:
		cancel := j.cancelFn
		j.mu.Unlock()
		cancel()
		select {
		case <-j.done:
		case <-ctx.Done():
		case <-time.After(2 * time.Second):
		}
		return j.snapshot(), nil
	default: // terminal
		j.mu.Unlock()
		return j.snapshot(), nil
	}
}

func (jm *jobManager) worker() {
	defer jm.wg.Done()
	for {
		select {
		case <-jm.ctx.Done():
			return
		case j := <-jm.queue:
			jm.runJob(j)
		}
	}
}

// runJob drives one job through annealing to a terminal state.
func (jm *jobManager) runJob(j *job) {
	j.mu.Lock()
	if j.state != JobAccepted {
		// Cancelled while queued; already terminal and persisted.
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(jm.ctx)
	j.cancelFn = cancel
	j.state = JobAnnealing
	j.mu.Unlock()
	defer cancel()

	gJobsRunning.Add(1)
	t0 := time.Now()
	result, err := jm.execute(ctx, j)
	mJobSec.Observe(time.Since(t0).Seconds())
	gJobsRunning.Add(-1)

	j.mu.Lock()
	switch {
	case err == nil:
		j.state = JobDone
		j.result = result
		mJobsDone.Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil:
		j.state = JobCancelled
		mJobsCancelled.Inc()
	default:
		j.state = JobFailed
		j.errMsg = err.Error()
		mJobsFailed.Inc()
	}
	close(j.done)
	j.mu.Unlock()
	jm.persist(j)
}

// execute resolves every module through the shared plan cache (one
// compile per module across the CLI, /v1/estimate and the job API)
// and runs the Plan-driven annealer.
func (jm *jobManager) execute(ctx context.Context, j *job) (*FloorplanResult, error) {
	ctx, sp := obs.Start(ctx, "floorplan.job")
	sp.SetString("job", j.id)
	sp.SetInt("modules", int64(len(j.circs)))
	var err error
	defer func() { sp.EndErr(err) }()

	mods := make([]floorplan.PlanModule, len(j.circs))
	for i, c := range j.circs {
		var pl *engine.Plan
		pl, err = jm.s.planWithKey(ctx, Key(engine.PlanHash(c, j.proc)), c, j.proc)
		if err != nil {
			return nil, err
		}
		mods[i] = floorplan.PlanModule{Name: c.Name, Plan: pl}
	}
	var plan *floorplan.Plan
	plan, err = floorplan.PlanModules(ctx, j.chip, mods, j.nets,
		floorplan.WithCongestWeight(j.cfg.congestWeight),
		floorplan.WithWireWeight(j.cfg.wireWeight),
		floorplan.WithSeed(j.cfg.seed),
		floorplan.WithBudget(j.cfg.budget),
		floorplan.WithCandidates(j.cfg.candidates),
		floorplan.WithTrackSharing(j.cfg.trackSharing),
		floorplan.WithProgress(func(p floorplan.Progress) {
			j.mu.Lock()
			j.iterations = int64(p.Iteration)
			j.bestCost = p.Best
			j.mu.Unlock()
		}))
	if err != nil {
		return nil, err
	}
	return encodeFloorplan(plan, j.procName, j.cfg), nil
}

// persist writes a terminal job record into NSFloorplan, write-behind.
func (jm *jobManager) persist(j *job) {
	jm.s.stier.putJob(j.key, j.snapshot())
}

// persisted probes the store for a finished record from a previous
// process life.
func (jm *jobManager) persisted(key Key) (*JobResponse, bool) {
	if jm.s.stier == nil {
		return nil, false
	}
	return jm.s.stier.getJob(key)
}

// drain stops the worker pool for shutdown: running anneals are
// cancelled (they notice within one move), queued jobs transition to
// cancelled, and every terminal record is persisted before the store
// tier flushes.  Idempotent; after drain every submit answers 429.
func (jm *jobManager) drain() {
	if jm == nil {
		return
	}
	jm.drainOnce.Do(func() {
		jm.mu.Lock()
		jm.draining = true
		jm.mu.Unlock()
		jm.cancel()
		jm.wg.Wait()
		for {
			select {
			case j := <-jm.queue:
				j.mu.Lock()
				transitioned := j.state == JobAccepted
				if transitioned {
					j.state = JobCancelled
					close(j.done)
				}
				j.mu.Unlock()
				if transitioned {
					mJobsCancelled.Inc()
					jm.persist(j)
				}
			default:
				return
			}
		}
	})
}

// jobID content-addresses a floorplan request: the SHA-256 of the
// canonical module renderings, the nets and the resolved knobs.
// Identical requests — byte-level differences in netlist formatting
// included — share one job, which is also what lets a restarted
// server answer a resubmit from the persisted record.
func jobID(chip, procName string, circs []*netlist.Circuit, nets []floorplan.Net, cfg jobConfig) (string, Key) {
	h := sha256.New()
	io.WriteString(h, "maest-floorplan-job-v1\x00")
	io.WriteString(h, chip)
	h.Write([]byte{0})
	io.WriteString(h, procName)
	h.Write([]byte{0})
	fmt.Fprintf(h, "cw=%g ww=%g seed=%d budget=%d cand=%d ts=%t\x00",
		cfg.congestWeight, cfg.wireWeight, cfg.seed, cfg.budget, cfg.candidates, cfg.trackSharing)
	for _, c := range circs {
		h.Write(engine.AppendCanonicalCircuit(nil, c))
		h.Write([]byte{0})
	}
	for _, n := range nets {
		io.WriteString(h, n.Name)
		for _, p := range n.Pins {
			io.WriteString(h, " "+p.Module+"."+p.Port)
		}
		h.Write([]byte{0})
	}
	var key Key
	h.Sum(key[:0])
	return hex.EncodeToString(key[:]), key
}

// encodeFloorplan converts a finished plan into its wire shape.
func encodeFloorplan(p *floorplan.Plan, procName string, cfg jobConfig) *FloorplanResult {
	out := &FloorplanResult{
		Chip:          p.Chip,
		Process:       procName,
		Width:         p.Width,
		Height:        p.Height,
		Area:          p.Area(),
		Utilization:   p.Utilization(),
		WireLength:    p.WireLength,
		Routability:   p.Routability,
		Cost:          p.Cost,
		Seed:          cfg.seed,
		Budget:        cfg.budget,
		CongestWeight: cfg.congestWeight,
		Iterations:    p.Stats.Iterations,
	}
	for _, b := range p.Blocks {
		out.Blocks = append(out.Blocks, PlacedBody{
			Name: b.Name, X: b.X, Y: b.Y, W: b.W, H: b.H,
			ShapeIndex: b.ShapeIndex, Rows: b.Rows,
		})
	}
	for _, mc := range p.Congestion {
		body := ModuleCongestBody{
			Module: mc.Module, Rows: mc.Rows, POverflowSum: mc.POverflowSum,
		}
		for _, ch := range mc.Channels {
			body.Channels = append(body.Channels, ChannelRiskBody{Index: ch.Index, POverflow: ch.POverflow})
		}
		out.Congestion = append(out.Congestion, body)
	}
	return out
}

// handleFloorplan answers POST /v1/floorplan: validate and
// content-address synchronously (bad requests fail fast with 4xx),
// then enqueue the anneal and answer 202 with the job id.  A
// duplicate of a known job answers 200 with its current snapshot.
func (s *Server) handleFloorplan(w http.ResponseWriter, r *http.Request, info *reqInfo) {
	var req FloorplanRequest
	if err := decodeJSON(http.MaxBytesReader(w, r.Body, s.opts.MaxRequestBytes), &req); err != nil {
		s.fail(w, info, err)
		return
	}
	info.mark("decode")
	if len(req.Modules) == 0 {
		s.fail(w, info, reqErr("floorplan has no modules"))
		return
	}
	proc, procName, err := lookupProcess(req.Process, s.opts.Process)
	if err != nil {
		s.fail(w, info, err)
		return
	}
	circs := make([]*netlist.Circuit, len(req.Modules))
	names := make(map[string]bool, len(req.Modules))
	for i, m := range req.Modules {
		c, err := parseCircuit(m.Format, m.Name, m.Netlist, proc)
		if err != nil {
			s.fail(w, info, reqErr("module %d: %v", i, err))
			return
		}
		if names[c.Name] {
			s.fail(w, info, reqErr("duplicate module %q", c.Name))
			return
		}
		names[c.Name] = true
		circs[i] = c
	}
	nets := make([]floorplan.Net, len(req.Nets))
	for i, n := range req.Nets {
		pins := make([]floorplan.NetPin, len(n.Pins))
		for j, p := range n.Pins {
			if !names[p.Module] {
				s.fail(w, info, reqErr("net %q references unknown module %q", n.Name, p.Module))
				return
			}
			pins[j] = floorplan.NetPin{Module: p.Module, Port: p.Port}
		}
		nets[i] = floorplan.Net{Name: n.Name, Pins: pins}
	}
	info.mark("parse")

	cfg := jobConfig{
		congestWeight: req.CongestWeight,
		wireWeight:    req.WireWeight,
		seed:          req.Seed,
		budget:        req.Budget,
		candidates:    req.Candidates,
		trackSharing:  true,
	}
	// Resolve defaults before hashing, so semantically identical
	// requests share one job id.
	if cfg.seed == 0 {
		cfg.seed = floorplan.DefaultSeed
	}
	if cfg.budget == 0 {
		cfg.budget = floorplan.DefaultBudget
	} else if cfg.budget < 0 {
		cfg.budget = 0
	}
	if cfg.candidates <= 0 {
		cfg.candidates = floorplan.DefaultCandidates
	}
	if req.TrackSharing != nil {
		cfg.trackSharing = *req.TrackSharing
	}
	chip := req.Chip
	if chip == "" {
		chip = "chip"
	}

	id, key := jobID(chip, procName, circs, nets, cfg)
	info.setDigest(key)
	j := &job{
		id: id, key: key,
		chip: chip, procName: procName, proc: proc,
		circs: circs, nets: nets, cfg: cfg,
		state: JobAccepted,
		done:  make(chan struct{}),
	}
	resp, status, err := s.jobs.submit(j)
	if err != nil {
		mJobsRejected.Inc()
		info.fail(err)
		w.Header().Set("Retry-After", strconv.Itoa(s.opts.RetryAfter))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error:     "serve: floorplan job queue full, retry later",
			RequestID: info.requestID(),
			TraceID:   info.traceID(),
		})
		return
	}
	writeJSON(w, status, resp)
}

// handleJobGet answers GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request, info *reqInfo) {
	rec, err := s.jobs.get(r.PathValue("id"))
	if err != nil {
		s.fail(w, info, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleJobCancel answers DELETE /v1/jobs/{id}.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request, info *reqInfo) {
	rec, err := s.jobs.cancelJob(r.Context(), r.PathValue("id"))
	if err != nil {
		s.fail(w, info, err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}
