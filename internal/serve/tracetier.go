package serve

import (
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"

	"maest/internal/obs"
	"maest/internal/store"
)

// The trace tier: the write-behind path from the tail sampler to the
// persistent store's NSTrace namespace.  A kept trace's flight record
// is enqueued here by instrument(); a writer goroutine encodes it with
// the obs trace codec and appends it to the store off the latency
// path.  Like the result tier, a trace dropped under backpressure
// costs history, not correctness — the drop counter says how much.
//
// The tier also owns the trace index: an in-memory map from trace id
// to the store keys of that trace's hops, plus a bounded recent-hops
// list for /debug/traces scans.  The index is rebuilt from a store
// scan at startup, which is what lets GET /debug/trace/{id} answer for
// a trace sampled before the last restart.
var (
	mTraceWrites = obs.DefCounter("maest_trace_store_writes_total", "sampled traces persisted to the trace store")
	mTraceErrs   = obs.DefCounter("maest_trace_store_errors_total", "trace persists that failed (encode or store append)")
	mTraceDrops  = obs.DefCounter("maest_trace_store_dropped_total", "sampled traces dropped because the queue was full or the tier was flushing")
	gTraceQueue  = obs.DefGauge("maest_trace_store_queue", "trace write-behind queue depth")
	gTraceIndex  = obs.DefGauge("maest_trace_store_indexed", "trace hops resident in the in-memory index")
)

const (
	// traceQueueCap bounds pending persists; beyond it, sampled traces
	// are dropped (counted) rather than blocking the request path.
	traceQueueCap = 4096
	// traceIndexCap bounds the in-memory hop index.  The store keeps
	// everything until its own eviction; the index only caps what
	// /debug/traces can enumerate without touching disk.
	traceIndexCap = 65536
)

// traceEntry is one persisted hop in the in-memory index — just
// enough to answer an index scan without reading the store.
type traceEntry struct {
	key      store.Key
	trace    [16]byte
	endpoint string
	status   int
	micros   int64
	unixNano int64
}

// traceTier wraps the trace store with the write-behind queue and the
// hop index.  A nil *traceTier is the disabled tier: every method is
// a no-op, the same idiom as the nil *storeTier.
type traceTier struct {
	st *store.Store

	// The queue is a plain slice under a condition variable rather
	// than a channel: flush-to-empty must be repeatable (tests and the
	// restart e2e sync the queue mid-run, then keep serving), and a
	// closed channel only flushes once.
	mu      sync.Mutex
	cond    sync.Cond
	queue   []obs.FlightRecord
	closed  bool
	writing bool // writer holds a drained batch not yet persisted
	wg      sync.WaitGroup

	idxMu   sync.RWMutex
	byTrace map[[16]byte][]store.Key
	entries []traceEntry // oldest first, bounded by traceIndexCap

	writes atomic.Int64
	errs   atomic.Int64
	drops  atomic.Int64
}

// newTraceTier rebuilds the hop index from the store's NSTrace
// namespace and starts the writer goroutine.
func newTraceTier(st *store.Store) *traceTier {
	t := &traceTier{st: st, byTrace: make(map[[16]byte][]store.Key)}
	t.cond.L = &t.mu
	t.rebuildIndex()
	t.wg.Add(1)
	go t.writer()
	return t
}

// rebuildIndex scans NSTrace and re-derives the in-memory index —
// newest hops win the bounded capacity.
func (t *traceTier) rebuildIndex() {
	var entries []traceEntry
	_ = t.st.Scan(store.NSTrace, func(key store.Key, payload []byte) error {
		rec, err := obs.DecodeTrace(payload)
		if err != nil {
			return nil // a rotten payload loses one hop, not the index
		}
		var trace [16]byte
		copy(trace[:], key[:16])
		entries = append(entries, traceEntry{
			key:      key,
			trace:    trace,
			endpoint: rec.Endpoint,
			status:   rec.Status,
			micros:   rec.Micros,
			unixNano: rec.Time.UnixNano(),
		})
		return nil
	})
	// Scan order is map order; the index wants time order so capacity
	// eviction drops the oldest history.
	sort.Slice(entries, func(i, j int) bool { return entries[i].unixNano < entries[j].unixNano })
	if len(entries) > traceIndexCap {
		entries = entries[len(entries)-traceIndexCap:]
	}
	t.idxMu.Lock()
	t.entries = entries
	for _, e := range entries {
		t.byTrace[e.trace] = append(t.byTrace[e.trace], e.key)
	}
	gTraceIndex.Set(float64(len(t.entries)))
	t.idxMu.Unlock()
}

func (t *traceTier) writer() {
	defer t.wg.Done()
	t.mu.Lock()
	for {
		for len(t.queue) == 0 && !t.closed {
			t.cond.Wait()
		}
		if len(t.queue) == 0 {
			t.mu.Unlock()
			return
		}
		batch := t.queue
		t.queue = nil
		t.writing = true
		gTraceQueue.Set(0)
		t.mu.Unlock()

		for i := range batch {
			t.persist(&batch[i])
		}

		t.mu.Lock()
		t.writing = false
		t.cond.Broadcast() // wake sync() waiters
	}
}

// persist encodes one flight record and appends it under its hop key.
func (t *traceTier) persist(rec *obs.FlightRecord) {
	key, ok := traceHopKey(rec.Trace, rec.Span)
	if !ok {
		t.errs.Add(1)
		mTraceErrs.Inc()
		return
	}
	payload := obs.EncodeTrace(nil, rec)
	if err := t.st.Put(store.NSTrace, key, payload); err != nil {
		t.errs.Add(1)
		mTraceErrs.Inc()
		return
	}
	t.writes.Add(1)
	mTraceWrites.Inc()
	t.indexAdd(traceEntry{
		key:      key,
		trace:    [16]byte(key[:16]),
		endpoint: rec.Endpoint,
		status:   rec.Status,
		micros:   rec.Micros,
		unixNano: rec.Time.UnixNano(),
	})
}

// traceHopKey builds the NSTrace store key for one hop: trace id (16
// bytes) + span id (8 bytes) + zero padding, so a distributed trace's
// hops share a key prefix.
func traceHopKey(traceID, spanID string) (store.Key, bool) {
	var k store.Key
	if len(traceID) != 32 || len(spanID) != 16 {
		return k, false
	}
	if _, err := hex.Decode(k[:16], []byte(traceID)); err != nil {
		return k, false
	}
	if _, err := hex.Decode(k[16:24], []byte(spanID)); err != nil {
		return k, false
	}
	return k, true
}

// hexTraceID renders a raw trace id the way the W3C header spells it.
func hexTraceID(t [16]byte) string { return hex.EncodeToString(t[:]) }

// indexAdd appends one hop, evicting the oldest when the index is full.
func (t *traceTier) indexAdd(e traceEntry) {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	for len(t.entries) >= traceIndexCap {
		old := t.entries[0]
		t.entries = t.entries[1:]
		keys := t.byTrace[old.trace]
		for i, k := range keys {
			if k == old.key {
				keys = append(keys[:i], keys[i+1:]...)
				break
			}
		}
		if len(keys) == 0 {
			delete(t.byTrace, old.trace)
		} else {
			t.byTrace[old.trace] = keys
		}
	}
	t.entries = append(t.entries, e)
	t.byTrace[e.trace] = append(t.byTrace[e.trace], e.key)
	gTraceIndex.Set(float64(len(t.entries)))
}

// enqueue hands one kept trace to the writer, dropping it (with a
// counter) when the queue is full or the tier is flushing.
func (t *traceTier) enqueue(rec obs.FlightRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.closed || len(t.queue) >= traceQueueCap {
		t.mu.Unlock()
		t.drops.Add(1)
		mTraceDrops.Inc()
		return
	}
	t.queue = append(t.queue, rec)
	gTraceQueue.Set(float64(len(t.queue)))
	t.mu.Unlock()
	t.cond.Signal()
}

// sync blocks until every trace enqueued so far has reached the store,
// without stopping intake — the deterministic settling point tests and
// the restart e2e use before asserting on store contents.
func (t *traceTier) sync() {
	if t == nil {
		return
	}
	t.mu.Lock()
	for len(t.queue) > 0 || t.writing {
		t.cond.Wait()
	}
	t.mu.Unlock()
}

// flush stops intake and blocks until the queue has drained.  Call
// before closing the store; safe to call more than once.
func (t *traceTier) flush() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	t.cond.Broadcast()
	t.wg.Wait()
}

// getTrace reads every persisted hop of one trace back from the store,
// decoded, sorted by time then span id.  The bool reports whether the
// trace id parsed and the index knew it.
func (t *traceTier) getTrace(traceID string) ([]*obs.FlightRecord, bool) {
	if t == nil {
		return nil, false
	}
	var trace [16]byte
	if len(traceID) != 32 {
		return nil, false
	}
	if _, err := hex.Decode(trace[:], []byte(traceID)); err != nil {
		return nil, false
	}
	t.idxMu.RLock()
	keys := append([]store.Key(nil), t.byTrace[trace]...)
	t.idxMu.RUnlock()
	if len(keys) == 0 {
		return nil, false
	}
	var hops []*obs.FlightRecord
	for _, k := range keys {
		b, ok, err := t.st.Get(store.NSTrace, k)
		if err != nil || !ok {
			continue
		}
		rec, err := obs.DecodeTrace(b)
		if err != nil {
			continue
		}
		hops = append(hops, rec)
	}
	sortHops(hops)
	return hops, len(hops) > 0
}

// sortHops orders a stitched trace's hops by wall time, span id
// breaking ties — the stable order both the live and post-restart
// renderings share.
func sortHops(hops []*obs.FlightRecord) {
	sort.Slice(hops, func(i, j int) bool {
		if !hops[i].Time.Equal(hops[j].Time) {
			return hops[i].Time.Before(hops[j].Time)
		}
		return hops[i].Span < hops[j].Span
	})
}

// query scans the hop index newest-first: hops matching the endpoint
// (when non-empty), at least minMicros long, at or after sinceUnix
// seconds, up to limit.
func (t *traceTier) query(endpoint string, minMicros, sinceUnix int64, limit int) []traceEntry {
	if t == nil || limit <= 0 {
		return nil
	}
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	out := make([]traceEntry, 0, limit)
	for i := len(t.entries) - 1; i >= 0 && len(out) < limit; i-- {
		e := t.entries[i]
		if endpoint != "" && e.endpoint != endpoint {
			continue
		}
		if e.micros < minMicros {
			continue
		}
		if sinceUnix > 0 && e.unixNano < sinceUnix*1e9 {
			continue
		}
		out = append(out, e)
	}
	return out
}

// indexed returns the number of hops resident in the index.
func (t *traceTier) indexed() int {
	if t == nil {
		return 0
	}
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	return len(t.entries)
}

// TraceTierStats is the trace tier's counters block, surfaced in
// /debug/traces and the bench telemetry snapshot.
type TraceTierStats struct {
	Writes  int64 `json:"writes"`
	Errors  int64 `json:"errors"`
	Dropped int64 `json:"dropped"`
	Indexed int   `json:"indexed"`
}

func (t *traceTier) tierStats() (TraceTierStats, bool) {
	if t == nil {
		return TraceTierStats{}, false
	}
	return TraceTierStats{
		Writes:  t.writes.Load(),
		Errors:  t.errs.Load(),
		Dropped: t.drops.Load(),
		Indexed: t.indexed(),
	}, true
}
