package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const repoTestdata = "../../testdata"

func TestRunStandardCell(t *testing.T) {
	if err := run("nmos25", 2, 1, false, "", "",
		[]string{filepath.Join(repoTestdata, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCIF(t *testing.T) {
	dir := t.TempDir()
	cif := filepath.Join(dir, "out.cif")
	if err := run("nmos25", 3, 1, false, cif, filepath.Join(dir, "out.svg"),
		[]string{filepath.Join(repoTestdata, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cif)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "DS 1 250 2;") {
		t.Fatalf("CIF content unexpected:\n%s", data[:100])
	}
}

func TestRunFullCustom(t *testing.T) {
	if err := run("nmos25", 0, 1, true, "", "",
		[]string{filepath.Join(repoTestdata, "ladder.mnet")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 2, 1, false, "", "", []string{"x"}); err == nil {
		t.Error("unknown process accepted")
	}
	if err := run("nmos25", 2, 1, false, "", "", nil); err == nil {
		t.Error("missing input accepted")
	}
	if err := run("nmos25", 2, 1, false, "", "", []string{"/nope.mnet"}); err == nil {
		t.Error("missing file accepted")
	}
	// Full-custom on a cell-level circuit must fail.
	if err := run("nmos25", 2, 1, true, "", "",
		[]string{filepath.Join(repoTestdata, "demo.mnet")}); err == nil {
		t.Error("cell circuit accepted by -fc")
	}
}
