package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const repoTestdata = "../../testdata"

func TestRunStandardCell(t *testing.T) {
	if err := run(options{proc: "nmos25", rows: 2, seed: 1},
		[]string{filepath.Join(repoTestdata, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCIF(t *testing.T) {
	dir := t.TempDir()
	cif := filepath.Join(dir, "out.cif")
	if err := run(options{proc: "nmos25", rows: 3, seed: 1, cifOut: cif, svgOut: filepath.Join(dir, "out.svg")},
		[]string{filepath.Join(repoTestdata, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cif)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "DS 1 250 2;") {
		t.Fatalf("CIF content unexpected:\n%s", data[:100])
	}
}

func TestRunFullCustom(t *testing.T) {
	if err := run(options{proc: "nmos25", seed: 1, fc: true},
		[]string{filepath.Join(repoTestdata, "ladder.mnet")}); err != nil {
		t.Fatal(err)
	}
}

// TestRunTraced checks that a traced layout run records the
// place/route spans nested under the layout span.
func TestRunTraced(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	if err := run(options{proc: "nmos25", rows: 2, seed: 1, trace: trace, metrics: true},
		[]string{filepath.Join(repoTestdata, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"span":"layout.sc"`, `"span":"place"`, `"span":"route"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace missing %s:\n%s", want, data)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(options{proc: "nope", rows: 2, seed: 1}, []string{"x"}); err == nil {
		t.Error("unknown process accepted")
	}
	if err := run(options{proc: "nmos25", rows: 2, seed: 1}, nil); err == nil {
		t.Error("missing input accepted")
	}
	if err := run(options{proc: "nmos25", rows: 2, seed: 1}, []string{"/nope.mnet"}); err == nil {
		t.Error("missing file accepted")
	}
	// Full-custom on a cell-level circuit must fail.
	if err := run(options{proc: "nmos25", rows: 2, seed: 1, fc: true},
		[]string{filepath.Join(repoTestdata, "demo.mnet")}); err == nil {
		t.Error("cell circuit accepted by -fc")
	}
}
