// Command maest-layout produces ground-truth module layouts: it
// places and routes a standard-cell circuit (the TimberWolf stand-in)
// or synthesizes a full-custom transistor layout (the manual-layout
// stand-in), and reports the measured geometry next to the
// estimator's prediction.
//
// Usage:
//
//	maest-layout [-proc nmos25] [-rows N] [-seed S] circuit.mnet
//	maest-layout -fc [-proc nmos25] [-seed S] transistor-circuit.mnet
//	maest-layout -trace out.jsonl -metrics -pprof out.cpu circuit.mnet
//
// The observability flags match maest: -trace streams JSONL spans
// (place/route children under the layout span) and prints the
// summary tree to stderr, -metrics dumps the annealing and routing
// metrics, -pprof CPU-profiles the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"maest"
	"maest/internal/obs"
)

// options carries the parsed flag values into run.
type options struct {
	proc    string
	rows    int
	seed    int64
	fc      bool
	cifOut  string
	svgOut  string
	trace   string
	metrics bool
	pprof   string
}

func main() {
	var o options
	flag.StringVar(&o.proc, "proc", "nmos25", "process: builtin name or @file")
	flag.IntVar(&o.rows, "rows", 2, "standard-cell row count")
	flag.Int64Var(&o.seed, "seed", 1, "layout engine seed")
	flag.BoolVar(&o.fc, "fc", false, "synthesize a full-custom layout (transistor-level input)")
	flag.StringVar(&o.cifOut, "cif", "", "also write the detailed layout geometry as CIF to this file")
	flag.StringVar(&o.svgOut, "svg", "", "also render the detailed layout geometry as SVG to this file")
	flag.StringVar(&o.trace, "trace", "", "write a JSONL span trace to this file ('-' = stdout) and a summary tree to stderr")
	flag.BoolVar(&o.metrics, "metrics", false, "dump pipeline metrics (Prometheus text format) to stderr on exit")
	flag.StringVar(&o.pprof, "pprof", "", "write a CPU profile to this file (and a heap snapshot to FILE.heap)")
	flag.Parse()
	if err := run(o, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "maest-layout:", err)
		os.Exit(1)
	}
}

func run(o options, args []string) (err error) {
	cli, ctx, err := obs.SetupCLI(context.Background(), o.trace, o.metrics, o.pprof)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := cli.Close(os.Stderr); err == nil {
			err = cerr
		}
	}()

	proc, err := loadProcess(o.proc)
	if err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one input file")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	circ, err := maest.ParseMnetCtx(ctx, f)
	if err != nil {
		return err
	}

	// The estimate side goes through a compiled plan — the same
	// statistics serve whichever methodology is being laid out.
	plan, err := maest.CompileCtx(ctx, circ, proc)
	if err != nil {
		return err
	}

	if o.fc {
		m, err := maest.SynthesizeFullCustomCtx(ctx, circ, proc, o.seed)
		if err != nil {
			return err
		}
		est, err := plan.EstimateFullCustom(ctx, maest.WithFCMode(maest.FCExactAreas))
		if err != nil {
			return err
		}
		fmt.Printf("full-custom layout of %s: %d × %d λ = %d λ² (rows=%d, aspect %.2f)\n",
			m.Name, m.Width, m.Height, m.Area(), m.Rows, m.AspectRatio())
		fmt.Printf("estimator (exact areas): %.0f λ²  (error %+.1f%%)\n",
			est.Area, (est.Area/float64(m.Area())-1)*100)
		return nil
	}

	m, err := maest.LayoutStandardCellCtx(ctx, circ, proc, o.rows, o.seed)
	if err != nil {
		return err
	}
	est, err := plan.EstimateStandardCell(ctx, maest.WithRows(o.rows))
	if err != nil {
		return err
	}
	tracks := 0
	for _, t := range m.ChannelTracks {
		tracks += t
	}
	fmt.Printf("standard-cell layout of %s: %d × %d λ = %d λ² (rows=%d, tracks=%d, feed-throughs=%d, aspect %.2f)\n",
		m.Name, m.Width, m.Height, m.Area(), m.Rows, tracks, m.FeedThroughs, m.AspectRatio())
	fmt.Printf("estimator: %.0f λ², %d tracks  (overestimate %+.1f%%)\n",
		est.Area, est.Tracks, (est.Area/float64(m.Area())-1)*100)
	if o.cifOut != "" || o.svgOut != "" {
		pl, err := maest.PlaceCircuitCtx(ctx, circ, proc, maest.PlaceOptions{Rows: o.rows, Seed: o.seed})
		if err != nil {
			return err
		}
		det, err := maest.DetailRoutePlacement(pl)
		if err != nil {
			return err
		}
		g, err := maest.BuildGeometry(pl, det, proc)
		if err != nil {
			return err
		}
		if o.cifOut != "" {
			if err := writeTo(o.cifOut, func(w *os.File) error { return maest.WriteCIF(w, g, proc) }); err != nil {
				return err
			}
			fmt.Printf("wrote detailed CIF geometry (%d rects) to %s\n", len(g.Rects), o.cifOut)
		}
		if o.svgOut != "" {
			if err := writeTo(o.svgOut, func(w *os.File) error { return maest.WriteSVG(w, g, 0) }); err != nil {
				return err
			}
			fmt.Printf("rendered layout SVG to %s\n", o.svgOut)
		}
	}
	return nil
}

func writeTo(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadProcess(spec string) (*maest.Process, error) {
	if file, ok := strings.CutPrefix(spec, "@"); ok {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return maest.ReadProcess(f)
	}
	return maest.LookupProcess(spec)
}
