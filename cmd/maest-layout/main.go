// Command maest-layout produces ground-truth module layouts: it
// places and routes a standard-cell circuit (the TimberWolf stand-in)
// or synthesizes a full-custom transistor layout (the manual-layout
// stand-in), and reports the measured geometry next to the
// estimator's prediction.
//
// Usage:
//
//	maest-layout [-proc nmos25] [-rows N] [-seed S] circuit.mnet
//	maest-layout -fc [-proc nmos25] [-seed S] transistor-circuit.mnet
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"maest"
)

func main() {
	var (
		procFlag = flag.String("proc", "nmos25", "process: builtin name or @file")
		rows     = flag.Int("rows", 2, "standard-cell row count")
		seed     = flag.Int64("seed", 1, "layout engine seed")
		fc       = flag.Bool("fc", false, "synthesize a full-custom layout (transistor-level input)")
		cifOut   = flag.String("cif", "", "also write the detailed layout geometry as CIF to this file")
		svgOut   = flag.String("svg", "", "also render the detailed layout geometry as SVG to this file")
	)
	flag.Parse()
	if err := run(*procFlag, *rows, *seed, *fc, *cifOut, *svgOut, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "maest-layout:", err)
		os.Exit(1)
	}
}

func run(procFlag string, rows int, seed int64, fc bool, cifOut, svgOut string, args []string) error {
	proc, err := loadProcess(procFlag)
	if err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one input file")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	circ, err := maest.ParseMnet(f)
	if err != nil {
		return err
	}

	if fc {
		m, err := maest.SynthesizeFullCustom(circ, proc, seed)
		if err != nil {
			return err
		}
		est, err := maest.EstimateFullCustom(circ, proc, maest.FCExactAreas)
		if err != nil {
			return err
		}
		fmt.Printf("full-custom layout of %s: %d × %d λ = %d λ² (rows=%d, aspect %.2f)\n",
			m.Name, m.Width, m.Height, m.Area(), m.Rows, m.AspectRatio())
		fmt.Printf("estimator (exact areas): %.0f λ²  (error %+.1f%%)\n",
			est.Area, (est.Area/float64(m.Area())-1)*100)
		return nil
	}

	m, err := maest.LayoutStandardCell(circ, proc, rows, seed)
	if err != nil {
		return err
	}
	s, err := maest.GatherStats(circ, proc)
	if err != nil {
		return err
	}
	est, err := maest.EstimateStandardCell(s, proc, maest.SCOptions{Rows: rows})
	if err != nil {
		return err
	}
	tracks := 0
	for _, t := range m.ChannelTracks {
		tracks += t
	}
	fmt.Printf("standard-cell layout of %s: %d × %d λ = %d λ² (rows=%d, tracks=%d, feed-throughs=%d, aspect %.2f)\n",
		m.Name, m.Width, m.Height, m.Area(), m.Rows, tracks, m.FeedThroughs, m.AspectRatio())
	fmt.Printf("estimator: %.0f λ², %d tracks  (overestimate %+.1f%%)\n",
		est.Area, est.Tracks, (est.Area/float64(m.Area())-1)*100)
	if cifOut != "" || svgOut != "" {
		pl, err := maest.PlaceCircuit(circ, proc, maest.PlaceOptions{Rows: rows, Seed: seed})
		if err != nil {
			return err
		}
		det, err := maest.DetailRoutePlacement(pl)
		if err != nil {
			return err
		}
		g, err := maest.BuildGeometry(pl, det, proc)
		if err != nil {
			return err
		}
		if cifOut != "" {
			if err := writeTo(cifOut, func(w *os.File) error { return maest.WriteCIF(w, g, proc) }); err != nil {
				return err
			}
			fmt.Printf("wrote detailed CIF geometry (%d rects) to %s\n", len(g.Rects), cifOut)
		}
		if svgOut != "" {
			if err := writeTo(svgOut, func(w *os.File) error { return maest.WriteSVG(w, g, 0) }); err != nil {
				return err
			}
			fmt.Printf("rendered layout SVG to %s\n", svgOut)
		}
	}
	return nil
}

func writeTo(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadProcess(spec string) (*maest.Process, error) {
	if file, ok := strings.CutPrefix(spec, "@"); ok {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return maest.ReadProcess(f)
	}
	return maest.LookupProcess(spec)
}
