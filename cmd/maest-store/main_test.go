package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maest/internal/store"
)

// populate writes n keys (and rewrites the first third, so compaction
// has garbage to reclaim) across several small segments, then closes
// the store.
func populate(t *testing.T, dir string, n int) {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := store.Key(sha256.Sum256([]byte(fmt.Sprintf("cli-key-%d", i))))
		val := []byte(fmt.Sprintf(`{"module":"m%d","area":%d.5}`, i, i*100))
		if err := st.Put(store.NSResult, key, val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n/3; i++ {
		key := store.Key(sha256.Sum256([]byte(fmt.Sprintf("cli-key-%d", i))))
		if err := st.Put(store.NSResult, key, []byte(`{"rewritten":true}`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// capture runs fn with os.Stdout redirected and returns what it wrote.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	ferr := fn()
	os.Stdout = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), ferr
}

func TestStatsTextAndJSON(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir, 60)

	out, err := capture(t, func() error { return runStats([]string{"-dir", dir}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"status:       ok", "segments:", "records:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}

	out, err = capture(t, func() error { return runStats([]string{"-dir", dir, "-json"}) })
	if err != nil {
		t.Fatal(err)
	}
	var stats store.Stats
	if err := json.Unmarshal([]byte(out), &stats); err != nil {
		t.Fatalf("stats -json not parseable: %v\n%s", err, out)
	}
	// 60 keys plus 20 rewrites: 80 physical records until compaction.
	if stats.Records != 80 || stats.GarbageBytes == 0 || stats.Degraded {
		t.Fatalf("stats = %+v, want 80 records with garbage, not degraded", stats)
	}
}

func TestVerifyCleanAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir, 60)

	out, err := capture(t, func() error { return runVerify([]string{"-dir", dir}) })
	if err != nil {
		t.Fatalf("verify on a clean store: %v\n%s", err, out)
	}
	if !strings.Contains(out, "clean") {
		t.Errorf("verify output missing verdict:\n%s", out)
	}

	// Flip one byte in the middle of a sealed segment; verify must
	// fail (the CLI's non-zero exit).
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no sealed segments: %v %v", segs, err)
	}
	seg := segs[0]
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = capture(t, func() error { return runVerify([]string{"-dir", dir, "-json"}) })
	if err == nil {
		t.Fatalf("verify passed on a corrupted store:\n%s", out)
	}
	var rep store.VerifyReport
	if jerr := json.Unmarshal([]byte(out), &rep); jerr != nil {
		t.Fatalf("verify -json not parseable: %v\n%s", jerr, out)
	}
	if rep.Clean || rep.Corrupt == 0 {
		t.Fatalf("report = %+v, want corruption flagged", rep)
	}
}

// TestVerifyWALCorruption: corruption in the active WAL is repaired
// by open (the bad record and everything after it are truncated away)
// before Verify ever rescans the file, so the post-repair report
// alone looks clean.  The verify command must still fail: it folds
// the open-time repair evidence into its verdict.
func TestVerifyWALCorruption(t *testing.T) {
	// corruptWAL flips a byte inside the first WAL record's key:
	// 8 bytes of segment magic, then the 6-byte record header, then
	// the key.  The record's CRC no longer matches, which open treats
	// as mid-file corruption (skip and truncate).  Each observation
	// needs its own directory: the first open repairs the file, so a
	// second verify over the same directory would see a clean store.
	corruptWAL := func(t *testing.T, dir string) {
		t.Helper()
		wal := filepath.Join(dir, "active.wal")
		b, err := os.ReadFile(wal)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) < 15 {
			t.Fatalf("WAL too small to corrupt: %d bytes", len(b))
		}
		b[14] ^= 0xFF
		if err := os.WriteFile(wal, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("text", func(t *testing.T) {
		dir := t.TempDir()
		populate(t, dir, 60)
		corruptWAL(t, dir)
		out, err := capture(t, func() error { return runVerify([]string{"-dir", dir}) })
		if err == nil {
			t.Fatalf("verify passed on a store whose WAL repair consumed corruption:\n%s", out)
		}
		if !strings.Contains(out, "corrupt records skipped during WAL repair") {
			t.Errorf("verify output does not explain the open-time repair:\n%s", out)
		}

		// The repair is the fix: a second verify over the now-truncated
		// store is clean and exits zero.
		out, err = capture(t, func() error { return runVerify([]string{"-dir", dir}) })
		if err != nil {
			t.Fatalf("verify after repair still failing: %v\n%s", err, out)
		}
	})

	t.Run("json", func(t *testing.T) {
		dir := t.TempDir()
		populate(t, dir, 60)
		corruptWAL(t, dir)
		out, err := capture(t, func() error { return runVerify([]string{"-dir", dir, "-json"}) })
		if err == nil {
			t.Fatalf("verify -json passed on open-time corruption:\n%s", out)
		}
		var rep struct {
			store.VerifyReport
			OpenCorrupt int64 `json:"open_corrupt_records_skipped"`
		}
		if jerr := json.Unmarshal([]byte(out), &rep); jerr != nil {
			t.Fatalf("verify -json not parseable: %v\n%s", jerr, out)
		}
		if rep.OpenCorrupt == 0 {
			t.Fatalf("report = %+v, want open-time corruption surfaced", rep)
		}
	})
}

func TestCompactReclaims(t *testing.T) {
	dir := t.TempDir()
	populate(t, dir, 60)

	out, err := capture(t, func() error { return runCompact([]string{"-dir", dir, "-json"}) })
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Compacted      int   `json:"segments_compacted"`
		BytesReclaimed int64 `json:"bytes_reclaimed"`
		Records        int64 `json:"records"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("compact -json not parseable: %v\n%s", err, out)
	}
	if res.Compacted == 0 || res.BytesReclaimed <= 0 {
		t.Fatalf("compact reclaimed nothing: %+v", res)
	}
	if res.Records != 60 {
		t.Fatalf("compact lost records: %+v", res)
	}

	// Every key survives with its latest value.
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 60; i++ {
		key := store.Key(sha256.Sum256([]byte(fmt.Sprintf("cli-key-%d", i))))
		val, ok, err := st.Get(store.NSResult, key)
		if err != nil || !ok {
			t.Fatalf("key %d missing after compact: ok=%v err=%v", i, ok, err)
		}
		want := fmt.Sprintf(`{"module":"m%d","area":%d.5}`, i, i*100)
		if i < 20 {
			want = `{"rewritten":true}`
		}
		if string(val) != want {
			t.Fatalf("key %d = %s, want %s", i, val, want)
		}
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := open(""); err == nil {
		t.Error("open with no -dir did not fail")
	}
	if _, err := open(filepath.Join(t.TempDir(), "nonexistent")); err == nil {
		t.Error("open on a missing directory did not fail")
	}
}
