// Command maest-store inspects and maintains a persistent estimate
// store directory (a maest-serve -store-dir) offline.
//
// Usage:
//
//	maest-store stats   -dir DIR [-json]
//	maest-store verify  -dir DIR [-json]
//	maest-store compact -dir DIR [-json]
//
// stats prints the store's statistics snapshot; verify re-reads and
// re-checksums every record in every segment and exits non-zero when
// any fails its CRC — including records the open-time WAL repair
// already skipped and truncated away, which a post-repair scan alone
// would never see; compact rewrites segments until no superseded or
// tombstoned records remain, reporting the bytes reclaimed.
//
// The store is an embedded, single-owner database: run this tool only
// against a directory no maest-serve instance currently has open.
// Opening repairs a torn tail the same way the server would (the
// partial final record is truncated away), so even the read-only
// commands may write to the directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"maest/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "stats":
		err = runStats(args)
	case "verify":
		err = runVerify(args)
	case "compact":
		err = runCompact(args)
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
		return
	default:
		fmt.Fprintf(os.Stderr, "maest-store: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "maest-store:", err)
		os.Exit(1)
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `maest-store inspects a persistent estimate store directory.

Usage:

  maest-store stats   -dir DIR [-json]   statistics snapshot
  maest-store verify  -dir DIR [-json]   re-checksum every record
  maest-store compact -dir DIR [-json]   drop superseded/tombstoned records

Run only against a directory no server has open.
`)
}

// dirFlags builds the flag set every subcommand shares.
func dirFlags(name string) (*flag.FlagSet, *string, *bool) {
	fs := flag.NewFlagSet("maest-store "+name, flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (required)")
	asJSON := fs.Bool("json", false, "machine-readable output")
	return fs, dir, asJSON
}

// open opens the store for offline maintenance: eviction disabled (an
// inspection must not delete data because the server's byte budget
// would have), everything else at server defaults.
func open(dir string) (*store.Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("-dir is required")
	}
	if _, err := os.Stat(dir); err != nil {
		// store.Open would create the directory; a typo'd -dir should
		// report, not mint an empty store.
		return nil, err
	}
	return store.Open(store.Options{Dir: dir, MaxBytes: -1})
}

func runStats(args []string) error {
	fs, dir, asJSON := dirFlags("stats")
	fs.Parse(args)
	st, err := open(*dir)
	if err != nil {
		return err
	}
	defer st.Close()
	stats := st.Stats()
	if *asJSON {
		return printJSON(stats)
	}
	status := "ok"
	if stats.Degraded {
		status = "degraded (corruption observed; recompute-on-miss in force)"
	}
	fmt.Printf("dir:          %s\n", stats.Dir)
	fmt.Printf("status:       %s\n", status)
	fmt.Printf("segments:     %d sealed (%d cold) + WAL\n", stats.Segments, stats.ColdSegments)
	fmt.Printf("bytes:        %d (WAL %d)\n", stats.Bytes, stats.WALBytes)
	fmt.Printf("records:      %d on disk, %d keys indexed\n", stats.Records, stats.IndexedKeys)
	fmt.Printf("garbage:      %d bytes superseded or tombstoned\n", stats.GarbageBytes)
	if stats.TruncatedTails > 0 {
		fmt.Printf("repairs:      %d torn tails truncated on open\n", stats.TruncatedTails)
	}
	if stats.CorruptRecords > 0 {
		fmt.Printf("corruption:   %d records skipped\n", stats.CorruptRecords)
	}
	return nil
}

func runVerify(args []string) error {
	fs, dir, asJSON := dirFlags("verify")
	fs.Parse(args)
	st, err := open(*dir)
	if err != nil {
		return err
	}
	defer st.Close()
	// Opening already scanned the WAL and repaired what it found: a
	// record failing its CRC mid-file is counted and truncated away
	// there, so by the time Verify re-reads the file it looks clean.
	// Fold the open-time evidence into the verdict — corruption must
	// not hide behind its own repair.  A pure torn tail (short final
	// record, the ordinary crash signature) is reported but benign.
	stats := st.Stats()
	rep, err := st.Verify()
	if err != nil {
		return err
	}
	if *asJSON {
		out := struct {
			*store.VerifyReport
			OpenCorrupt int64 `json:"open_corrupt_records_skipped,omitempty"`
			OpenTorn    int64 `json:"open_torn_tails_truncated,omitempty"`
			Degraded    bool  `json:"degraded,omitempty"`
		}{rep, stats.CorruptRecords, stats.TruncatedTails, stats.Degraded}
		if err := printJSON(out); err != nil {
			return err
		}
	} else {
		fmt.Print(rep.String())
		if stats.TruncatedTails > 0 {
			fmt.Printf("open: %d torn tails truncated (benign crash signature)\n", stats.TruncatedTails)
		}
		if stats.CorruptRecords > 0 {
			fmt.Printf("open: %d corrupt records skipped during WAL repair; later records were discarded\n", stats.CorruptRecords)
		}
	}
	switch {
	case !rep.Clean:
		return fmt.Errorf("verification failed: %d corrupt records", rep.Corrupt)
	case stats.CorruptRecords > 0:
		return fmt.Errorf("verification failed: %d corrupt records repaired away on open", stats.CorruptRecords)
	case stats.Degraded:
		return fmt.Errorf("verification failed: store is degraded")
	}
	return nil
}

func runCompact(args []string) error {
	fs, dir, asJSON := dirFlags("compact")
	fs.Parse(args)
	st, err := open(*dir)
	if err != nil {
		return err
	}
	defer st.Close()
	before := st.Stats()
	n, err := st.Compact()
	if err != nil {
		return err
	}
	after := st.Stats()
	if *asJSON {
		return printJSON(struct {
			Compacted      int   `json:"segments_compacted"`
			BytesBefore    int64 `json:"bytes_before"`
			BytesAfter     int64 `json:"bytes_after"`
			BytesReclaimed int64 `json:"bytes_reclaimed"`
			Records        int64 `json:"records"`
		}{n, before.Bytes, after.Bytes, before.Bytes - after.Bytes, after.Records})
	}
	fmt.Printf("compacted %d segments: %d -> %d bytes (%d reclaimed), %d records\n",
		n, before.Bytes, after.Bytes, before.Bytes-after.Bytes, after.Records)
	return nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
