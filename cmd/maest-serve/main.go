// Command maest-serve is the long-lived estimation service: the
// Fig. 1 pipeline behind an HTTP/JSON API with a content-addressed
// result cache, concurrency limiting, per-request deadlines, and
// graceful shutdown.
//
// Usage:
//
//	maest-serve [-addr :8080] [-proc nmos25] [-cache N]
//	            [-concurrency N] [-timeout 30s] [-max-bytes N]
//	            [-workers N] [-retry-after 1] [-drain 10s]
//	            [-trace out.jsonl] [-pprof out.cpu]
//
// Endpoints:
//
//	POST /v1/estimate        {"netlist": "...", "format": "mnet|bench|verilog", ...}
//	POST /v1/estimate/batch  {"modules": [{"netlist": "..."}, ...]}
//	POST /v1/congestion      {"netlist": "...", "model": "occupancy|crossing", ...}
//	GET  /healthz            liveness probe
//	GET  /metrics            Prometheus text exposition
//
// SIGINT/SIGTERM drain in-flight estimates for up to -drain before
// the listener closes hard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"maest/internal/obs"
	"maest/internal/serve"
)

// options carries the parsed flag values into run.
type options struct {
	addr        string
	proc        string
	cacheSize   int
	concurrency int
	timeout     time.Duration
	maxBytes    int64
	workers     int
	retryAfter  int
	drain       time.Duration
	trace       string
	pprof       string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.proc, "proc", "nmos25", "default builtin process for requests naming none")
	flag.IntVar(&o.cacheSize, "cache", 1024, "result cache capacity in entries (negative disables)")
	flag.IntVar(&o.concurrency, "concurrency", 0, "max concurrent estimate requests; excess gets 429 (0 = 2×GOMAXPROCS)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request estimation deadline")
	flag.Int64Var(&o.maxBytes, "max-bytes", 8<<20, "request body size limit in bytes")
	flag.IntVar(&o.workers, "workers", 0, "batch estimation worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&o.retryAfter, "retry-after", 1, "Retry-After hint in seconds on 429 responses when load is shed")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful-shutdown drain budget for in-flight estimates")
	flag.StringVar(&o.trace, "trace", "", "write a JSONL span trace to this file ('-' = stdout) and a summary tree to stderr on exit")
	flag.StringVar(&o.pprof, "pprof", "", "write a CPU profile to this file (and a heap snapshot to FILE.heap)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "maest-serve:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until a termination signal has
// been handled (metrics stay live on /metrics; -trace/-pprof flush at
// exit like the other maest commands).
func run(o options) (err error) {
	cli, ctx, err := obs.SetupCLI(context.Background(), o.trace, false, o.pprof)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := cli.Close(os.Stderr); err == nil {
			err = cerr
		}
	}()

	srv, addr, err := startServer(ctx, o, nil)
	if err != nil {
		return err
	}
	log.Printf("maest-serve: listening on %s (process %s, cache %d, drain %s)",
		addr, o.proc, o.cacheSize, o.drain)

	sigCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-sigCtx.Done()
	log.Printf("maest-serve: shutting down, draining for up to %s", o.drain)
	return shutdown(srv, o.drain)
}

// startServer validates the options, binds the listener, and serves
// in the background, returning the bound address (the tests listen on
// port 0).  hook is threaded into serve.Options for deterministic
// end-to-end overload tests; production passes nil.
func startServer(ctx context.Context, o options, hook func()) (*http.Server, string, error) {
	handler := serve.New(serve.Options{
		Process:         o.proc,
		CacheSize:       o.cacheSize,
		MaxConcurrent:   o.concurrency,
		Timeout:         o.timeout,
		MaxRequestBytes: o.maxBytes,
		Workers:         o.workers,
		RetryAfter:      o.retryAfter,
		EstimateHook:    hook,
	})
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		// Estimate requests carry their own deadline; pad the write
		// timeout past it so the 504 body still reaches the client.
		WriteTimeout: o.timeout + 5*time.Second,
		BaseContext:  func(net.Listener) context.Context { return ctx },
	}
	go func() {
		if serr := srv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			log.Printf("maest-serve: %v", serr)
		}
	}()
	return srv, ln.Addr().String(), nil
}

// shutdown drains in-flight estimates for up to the drain budget,
// then closes the listener hard.
func shutdown(srv *http.Server, drain time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		return fmt.Errorf("drain incomplete after %s: %w", drain, err)
	}
	return nil
}
