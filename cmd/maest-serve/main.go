// Command maest-serve is the long-lived estimation service: the
// Fig. 1 pipeline behind an HTTP/JSON API with a content-addressed
// result cache, concurrency limiting, per-request deadlines, request
// telemetry (flight recorder + structured access log), and graceful
// shutdown.
//
// Usage:
//
//	maest-serve [-addr :8080] [-proc nmos25] [-cache N]
//	            [-concurrency N] [-timeout 30s] [-max-bytes N]
//	            [-workers N] [-retry-after 1] [-drain 10s]
//	            [-job-workers 2] [-job-queue 32]
//	            [-flight N] [-access-log FILE] [-debug-addr ADDR]
//	            [-trace out.jsonl] [-pprof out.cpu]
//	            [-backend URL] [-runtime-metrics 15s]
//	            [-store-dir DIR] [-store-max-bytes N]
//	            [-trace-store DIR] [-trace-sample-rate 0.05]
//	            [-trace-slow 100ms]
//	            [-watchdog 0] [-watchdog-golden DIR] [-watchdog-ref FILE]
//	            [-watchdog-tol 0.5] [-watchdog-seed N]
//
// -backend turns the instance into a forwarding hop (the maest-router
// building block): /v1/* relays to the backend with the W3C
// traceparent re-injected, so one trace id spans client → router →
// shard.  -store-dir mounts the persistent plan store: results and
// congestion maps persist across restarts under their content
// addresses, so a restarted instance answers repeat requests from disk
// instead of re-paying compile+execute (-store-max-bytes caps the
// store; the oldest segments are evicted beyond it).  -watchdog starts the accuracy watchdog: every interval the
// golden circuit set replays through the live plan cache and /healthz
// degrades (503) when any module drifts beyond -watchdog-tol
// percentage points from the pinned reference.
//
// Endpoints:
//
//	POST /v1/estimate        {"netlist": "...", "format": "mnet|bench|verilog", ...}
//	POST /v1/estimate/batch  {"modules": [{"netlist": "..."}, ...]}
//	POST /v1/congestion      {"netlist": "...", "model": "occupancy|crossing", ...}
//	POST /v1/floorplan       submit an async floorplan job (202 + job id)
//	GET  /v1/jobs/{id}       poll a job (accepted|annealing|done|failed|cancelled)
//	DELETE /v1/jobs/{id}     cancel a job (idempotent)
//	GET  /healthz            liveness probe
//	GET  /metrics            Prometheus text exposition
//
// With -debug-addr the observatory listener additionally serves (on a
// separate socket, so request payloads never leave the debug network):
//
//	GET /debug/flight?n=N    recent request records + latency quantiles
//	GET /debug/slowest?k=K   top-K requests by duration, span breakdown
//	GET /debug/store         persistent-store statistics snapshot
//	GET /debug/trace/{id}    one trace's stitched span tree (with
//	                         -trace-store, across restarts)
//	GET /debug/traces        the persisted-trace index scan
//	GET /debug/plans         per-plan cost profiles
//	GET /debug/pprof/*       the Go runtime profiler
//	GET /metrics             the same exposition, for sidecar scrapers
//
// -trace-store mounts the persistent trace store: requests kept by the
// tail sampler (every error, everything slower than -trace-slow, and a
// -trace-sample-rate baseline) persist their full span trees, and the
// trace behind yesterday's latency spike is still one GET
// /debug/trace/{id} after a restart.
//
// SIGINT/SIGTERM drain in-flight estimates for up to -drain before
// the listener closes hard; in-flight floorplan jobs are cancelled,
// persisted as cancelled (with -store-dir), and leak no goroutine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"maest/internal/obs"
	"maest/internal/serve"
	"maest/internal/store"
)

// options carries the parsed flag values into run.
type options struct {
	addr        string
	proc        string
	cacheSize   int
	concurrency int
	timeout     time.Duration
	maxBytes    int64
	workers     int
	retryAfter  int
	jobWorkers  int
	jobQueue    int
	drain       time.Duration
	flight      int
	accessLog   string
	debugAddr   string
	trace       string
	pprof       string

	backend        string
	runtimeMetrics time.Duration
	storeDir       string
	storeMaxBytes  int64
	traceStoreDir  string
	traceRate      float64
	traceSlow      time.Duration
	watchdog       time.Duration
	watchdogGolden string
	watchdogRef    string
	watchdogTol    float64
	watchdogSeed   int64
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8080", "listen address")
	flag.StringVar(&o.proc, "proc", "nmos25", "default builtin process for requests naming none")
	flag.IntVar(&o.cacheSize, "cache", 1024, "result cache capacity in entries (negative disables)")
	flag.IntVar(&o.concurrency, "concurrency", 0, "max concurrent estimate requests; excess gets 429 (0 = 2×GOMAXPROCS)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-request estimation deadline")
	flag.Int64Var(&o.maxBytes, "max-bytes", 8<<20, "request body size limit in bytes")
	flag.IntVar(&o.workers, "workers", 0, "batch estimation worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&o.retryAfter, "retry-after", 1, "Retry-After hint in seconds on 429 responses when load is shed")
	flag.IntVar(&o.jobWorkers, "job-workers", 2, "floorplan job worker pool size")
	flag.IntVar(&o.jobQueue, "job-queue", 32, "floorplan job queue capacity; a full queue answers 429")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful-shutdown drain budget for in-flight estimates")
	flag.IntVar(&o.flight, "flight", 256, "flight-recorder capacity in request records (0 disables)")
	flag.StringVar(&o.accessLog, "access-log", "", "write a JSON access log line per request to this file ('-' = stdout, empty disables)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve the observatory debug endpoints (/debug/flight, /debug/slowest, /metrics) on this extra address (empty disables)")
	flag.StringVar(&o.trace, "trace", "", "write a JSONL span trace to this file ('-' = stdout) and a summary tree to stderr on exit")
	flag.StringVar(&o.pprof, "pprof", "", "write a CPU profile to this file (and a heap snapshot to FILE.heap)")
	flag.StringVar(&o.backend, "backend", "", "forward /v1/* to this maest-serve base URL instead of estimating locally (router mode; traceparent is re-injected per hop)")
	flag.DurationVar(&o.runtimeMetrics, "runtime-metrics", 15*time.Second, "Go runtime telemetry sampling interval for /metrics (0 disables)")
	flag.StringVar(&o.storeDir, "store-dir", "", "mount the persistent plan store in this directory: results persist across restarts and warm-start the caches (empty disables)")
	flag.Int64Var(&o.storeMaxBytes, "store-max-bytes", 1<<30, "persistent store size budget in bytes; the oldest segments are evicted beyond it (negative disables eviction)")
	flag.StringVar(&o.traceStoreDir, "trace-store", "", "persist tail-sampled request traces in this directory; GET /debug/trace/{id} then answers across restarts (empty disables)")
	flag.Float64Var(&o.traceRate, "trace-sample-rate", 0.05, "baseline fraction of traces kept by the tail sampler (errors and the slow tail are always kept)")
	flag.DurationVar(&o.traceSlow, "trace-slow", 100*time.Millisecond, "requests at least this slow are always sampled (0 disables the slow-tail rule)")
	flag.DurationVar(&o.watchdog, "watchdog", 0, "accuracy watchdog probe interval; replays the golden set through the live plan cache and degrades /healthz on drift (0 disables)")
	flag.StringVar(&o.watchdogGolden, "watchdog-golden", "testdata/golden", "golden tables directory for the accuracy watchdog")
	flag.StringVar(&o.watchdogRef, "watchdog-ref", "testdata/bench/BENCH_reference.json", "pinned bench snapshot the watchdog diffs against")
	flag.Float64Var(&o.watchdogTol, "watchdog-tol", 0.5, "allowed drift growth beyond the reference, in percentage points")
	flag.Int64Var(&o.watchdogSeed, "watchdog-seed", 0, "layout-synthesis seed for watchdog probes (0 = the reference snapshot's seed)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "maest-serve:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until a termination signal has
// been handled (metrics stay live on /metrics; -trace/-pprof flush at
// exit like the other maest commands).
func run(o options) (err error) {
	cli, ctx, err := obs.SetupCLI(context.Background(), o.trace, false, o.pprof)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := cli.Close(os.Stderr); err == nil {
			err = cerr
		}
	}()

	accessLog, closeLog, err := openAccessLog(o.accessLog)
	if err != nil {
		return err
	}
	defer closeLog()

	rt, err := startServer(ctx, o, accessLog, nil)
	if err != nil {
		return err
	}
	log.Printf("maest-serve: listening on %s (process %s, cache %d, flight %d, drain %s)",
		rt.apiAddr, o.proc, o.cacheSize, o.flight, o.drain)
	if rt.debug != nil {
		log.Printf("maest-serve: observatory on %s", rt.debugAddr)
	}
	if rt.store != nil {
		st := rt.store.Stats()
		log.Printf("maest-serve: persistent store at %s (%d segments, %d records, %d bytes)",
			o.storeDir, st.Segments, st.Records, st.Bytes)
	}
	if rt.traceStore != nil {
		st := rt.traceStore.Stats()
		log.Printf("maest-serve: trace store at %s (%d records, %d bytes; rate %g, slow %s)",
			o.traceStoreDir, st.Records, st.Bytes, o.traceRate, o.traceSlow)
	}

	sigCtx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-sigCtx.Done()
	log.Printf("maest-serve: shutting down, draining for up to %s", o.drain)
	return rt.shutdown(o.drain)
}

// openAccessLog resolves the -access-log flag into a writer: empty
// disables, '-' selects stdout, anything else appends to the file.
func openAccessLog(path string) (io.Writer, func() error, error) {
	switch path {
	case "":
		return nil, func() error { return nil }, nil
	case "-":
		return os.Stdout, func() error { return nil }, nil
	default:
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		return f, f.Close, nil
	}
}

// running holds the bound listeners of one maest-serve instance: the
// API server and, when -debug-addr is set, the observatory sidecar.
type running struct {
	api        *http.Server
	apiAddr    string
	debug      *http.Server // nil when -debug-addr is empty
	debugAddr  string
	handler    *serve.Server
	sampler    *obs.RuntimeSampler // nil when -runtime-metrics is 0
	store      *store.Store        // nil when -store-dir is empty
	traceStore *store.Store        // nil when -trace-store is empty
}

// startServer validates the options, binds the listeners, and serves
// in the background, returning the bound addresses (the tests listen
// on port 0).  hook is threaded into serve.Options for deterministic
// end-to-end overload tests; production passes nil.
func startServer(ctx context.Context, o options, accessLog io.Writer, hook func()) (*running, error) {
	var st *store.Store
	if o.storeDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: o.storeDir, MaxBytes: o.storeMaxBytes})
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	var tst *store.Store
	if o.traceStoreDir != "" {
		var err error
		tst, err = store.Open(store.Options{Dir: o.traceStoreDir, MaxBytes: o.storeMaxBytes})
		if err != nil {
			if st != nil {
				st.Close()
			}
			return nil, fmt.Errorf("trace store: %w", err)
		}
	}
	handler := serve.New(serve.Options{
		Process:         o.proc,
		CacheSize:       o.cacheSize,
		MaxConcurrent:   o.concurrency,
		Timeout:         o.timeout,
		MaxRequestBytes: o.maxBytes,
		Workers:         o.workers,
		RetryAfter:      o.retryAfter,
		JobWorkers:      o.jobWorkers,
		JobQueue:        o.jobQueue,
		EstimateHook:    hook,
		FlightSize:      o.flight,
		AccessLog:       accessLog,
		Backend:         o.backend,
		Store:           st,
		TraceStore:      tst,
		Sample: obs.SamplePolicy{
			Rate:       o.traceRate,
			SlowMicros: o.traceSlow.Microseconds(),
			KeepErrors: true,
		},
		Watchdog: serve.WatchdogOptions{
			Interval:  o.watchdog,
			GoldenDir: o.watchdogGolden,
			Reference: o.watchdogRef,
			TolPP:     o.watchdogTol,
			Seed:      o.watchdogSeed,
		},
	})
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		if st != nil {
			st.Close()
		}
		if tst != nil {
			tst.Close()
		}
		return nil, err
	}
	rt := &running{
		api: &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: 10 * time.Second,
			// Estimate requests carry their own deadline; pad the write
			// timeout past it so the 504 body still reaches the client.
			WriteTimeout: o.timeout + 5*time.Second,
			BaseContext:  func(net.Listener) context.Context { return ctx },
		},
		apiAddr:    ln.Addr().String(),
		handler:    handler,
		sampler:    obs.NewRuntimeSampler(o.runtimeMetrics),
		store:      st,
		traceStore: tst,
	}
	rt.sampler.Start()
	rt.handler.Watchdog().Start()
	go serveListener(rt.api, ln)

	if o.debugAddr != "" {
		dln, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			ln.Close()
			if st != nil {
				st.Close()
			}
			if tst != nil {
				tst.Close()
			}
			return nil, fmt.Errorf("debug listener: %w", err)
		}
		rt.debug = &http.Server{
			Handler:           handler.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
			BaseContext:       func(net.Listener) context.Context { return ctx },
		}
		rt.debugAddr = dln.Addr().String()
		go serveListener(rt.debug, dln)
	}
	return rt, nil
}

func serveListener(srv *http.Server, ln net.Listener) {
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("maest-serve: %v", err)
	}
}

// shutdown drains in-flight estimates for up to the drain budget,
// then closes the listeners hard.  The debug listener has no
// long-running requests and closes immediately.
func (rt *running) shutdown(drain time.Duration) error {
	rt.handler.Watchdog().Stop()
	rt.sampler.Stop()
	if rt.debug != nil {
		rt.debug.Close()
	}
	// The stores outlive the listeners: results computed (and traces
	// sampled) by the last in-flight requests still flush through the
	// write-behind queues before the files close.
	defer func() {
		rt.handler.FlushStore()
		if rt.store != nil {
			rt.store.Close()
		}
		rt.handler.FlushTraces()
		if rt.traceStore != nil {
			rt.traceStore.Close()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := rt.api.Shutdown(ctx); err != nil {
		rt.api.Close()
		return fmt.Errorf("drain incomplete after %s: %w", drain, err)
	}
	return nil
}
