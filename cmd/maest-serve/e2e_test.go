package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"maest/internal/client"
	"maest/internal/obs"
	"maest/internal/serve"
)

// fetchFlight reads one instance's flight recorder over its debug
// listener.
func fetchFlight(t *testing.T, debugBase string) []obs.FlightRecord {
	t.Helper()
	resp, err := http.Get(debugBase + "/debug/flight?n=16")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var flight serve.FlightResponse
	if err := json.Unmarshal(body, &flight); err != nil {
		t.Fatalf("debug/flight not JSON: %v\n%s", err, body)
	}
	return flight.Requests
}

// TestTwoProcessTraceStitch is the tentpole acceptance test: a client
// with an explicit root trace context calls serve A (router mode),
// which forwards to serve B (estimating), each instance bound to its
// own sockets with its own flight recorder.  One trace id must span
// client → A → B, with each hop's parent span pointing at the hop
// before it.
func TestTwoProcessTraceStitch(t *testing.T) {
	// Process B: the estimating shard.
	shard := startTestRunning(t, options{
		flight:    16,
		debugAddr: "127.0.0.1:0",
	}, nil, nil)
	// Process A: the forwarding router in front of it.
	router := startTestRunning(t, options{
		flight:    16,
		debugAddr: "127.0.0.1:0",
		backend:   shard.api,
	}, nil, nil)

	netlist, err := os.ReadFile(filepath.Join(repoTestdata, "demo.mnet"))
	if err != nil {
		t.Fatal(err)
	}
	root := obs.NewTraceContext()
	ctx := obs.WithTraceContext(context.Background(), root)
	resp, err := client.New(router.api).Estimate(ctx, serve.EstimateRequest{Netlist: string(netlist)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Module != "demo" || resp.SC == nil {
		t.Fatalf("estimate through two hops broken: %+v", resp)
	}

	routerRecs := fetchFlight(t, router.debug)
	shardRecs := fetchFlight(t, shard.debug)
	if len(routerRecs) != 1 || len(shardRecs) != 1 {
		t.Fatalf("flight records router=%d shard=%d, want 1/1", len(routerRecs), len(shardRecs))
	}
	rr, sr := routerRecs[0], shardRecs[0]

	// One trace id across both recorders, anchored at the client root.
	want := root.TraceIDString()
	if rr.Trace != want || sr.Trace != want {
		t.Fatalf("trace ids diverged: client %s router %s shard %s", want, rr.Trace, sr.Trace)
	}
	// The chain of custody: client span → router span → shard span.
	if rr.ParentSpan != root.SpanIDString() {
		t.Fatalf("router parent %s, want client span %s", rr.ParentSpan, root.SpanIDString())
	}
	if sr.ParentSpan != rr.Span {
		t.Fatalf("shard parent %s, want router span %s", sr.ParentSpan, rr.Span)
	}
	if rr.Span == sr.Span || rr.Span == "" || sr.Span == "" {
		t.Fatalf("hop spans must be distinct and non-empty: router %q shard %q", rr.Span, sr.Span)
	}
	// The shard did the actual work; the router only forwarded.
	if sr.Endpoint != "/v1/estimate" || sr.Status != http.StatusOK {
		t.Fatalf("shard record %+v", sr)
	}
	if sr.CacheHit {
		t.Fatal("first estimate must be a miss")
	}
}

// TestRuntimeMetricsExposed boots the service with the runtime
// sampler on and asserts the Go runtime gauges reach /metrics.
func TestRuntimeMetricsExposed(t *testing.T) {
	base := startTestServer(t, options{runtimeMetrics: 10 * time.Millisecond}, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		text := string(b)
		if strings.Contains(text, "maest_runtime_goroutines") &&
			strings.Contains(text, "maest_runtime_heap_bytes") &&
			strings.Contains(text, "maest_runtime_gc_pause_p99_seconds") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("runtime gauges never appeared in /metrics:\n%s", text)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWatchdogFlagEndToEnd boots the service with the accuracy
// watchdog enabled and waits for the first probe to publish its drift
// gauge and a healthy /healthz watchdog block.
func TestWatchdogFlagEndToEnd(t *testing.T) {
	base := startTestServer(t, options{
		watchdog:       time.Hour, // the immediate startup probe is enough
		watchdogGolden: filepath.Join(repoTestdata, "golden"),
		watchdogRef:    filepath.Join(repoTestdata, "bench", "BENCH_reference.json"),
		watchdogTol:    0.5,
	}, nil)

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		var h serve.HealthResponse
		if err := json.Unmarshal(b, &h); err != nil {
			t.Fatalf("healthz not JSON: %v\n%s", err, b)
		}
		if h.Watchdog == nil {
			t.Fatalf("healthz missing watchdog block: %s", b)
		}
		if h.Watchdog.Probes > 0 {
			if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Watchdog.Degraded {
				t.Fatalf("watchdog unhealthy on pristine goldens: %d %s", resp.StatusCode, b)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog never probed")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The drift gauge is exposed (gauges print with %g, so scrape the
	// raw text rather than the integer-counter helper).
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "maest_serve_accuracy_drift_pp") {
		t.Fatal("metrics exposition missing maest_serve_accuracy_drift_pp")
	}
	if !strings.Contains(string(b), "maest_serve_accuracy_degraded 0") {
		t.Fatal("degraded gauge not 0 on pristine goldens")
	}
}
