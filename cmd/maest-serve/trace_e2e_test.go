package main

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"testing"
	"time"

	"maest/internal/serve"
)

// startTraceServer boots an instance persisting every trace into dir,
// with the observatory listener up, WITHOUT cleanup registration —
// the restart test owns shutdown ordering.
func startTraceServer(t *testing.T, dir string) *running {
	t.Helper()
	o := options{
		addr:          "127.0.0.1:0",
		debugAddr:     "127.0.0.1:0",
		proc:          "nmos25",
		cacheSize:     1024,
		timeout:       30 * time.Second,
		maxBytes:      8 << 20,
		flight:        64,
		traceStoreDir: dir,
		traceRate:     1.0,
		traceSlow:     time.Millisecond,
		storeMaxBytes: 1 << 30,
	}
	rt, err := startServer(context.Background(), o, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestTraceStoreRestartEndToEnd is the acceptance flow: run traffic
// with -trace-store, fetch one pre-restart trace's rendering, kill the
// process, restart over the same directory, and require GET
// /debug/trace/{id} to answer byte-identically.
func TestTraceStoreRestartEndToEnd(t *testing.T) {
	dir := t.TempDir()
	src := suiteNetlists(t)["sc-exp1"]
	if src == "" {
		t.Fatal("sc-exp1 missing from the golden suites")
	}

	rt1 := startTraceServer(t, dir)
	api, dbg := "http://"+rt1.apiAddr, "http://"+rt1.debugAddr

	// Traffic mix: computed estimate, cache-hit repeat, congestion, and
	// a malformed request (kept by the error rule).
	if code, _, b := postJSON(t, api+"/v1/estimate", serve.EstimateRequest{Netlist: src}); code != http.StatusOK {
		t.Fatalf("estimate: %d %s", code, b)
	}
	if code, _, b := postJSON(t, api+"/v1/estimate", serve.EstimateRequest{Netlist: src}); code != http.StatusOK {
		t.Fatalf("repeat estimate: %d %s", code, b)
	}
	if code, _, b := postJSON(t, api+"/v1/congestion", serve.CongestionRequest{Netlist: src, Rows: 3}); code != http.StatusOK {
		t.Fatalf("congestion: %d %s", code, b)
	}
	if code, _, _ := postJSON(t, api+"/v1/estimate", serve.EstimateRequest{}); code != http.StatusBadRequest {
		t.Fatalf("malformed estimate returned %d, want 400", code)
	}
	rt1.handler.SyncTraces()

	// The index scan sees all four hops; pick the computed estimate.
	code, idxBody := getBody(t, dbg+"/debug/traces?endpoint=/v1/estimate")
	if code != http.StatusOK {
		t.Fatalf("debug/traces: %d %s", code, idxBody)
	}
	var idx serve.DebugTracesResponse
	if err := json.Unmarshal(idxBody, &idx); err != nil {
		t.Fatal(err)
	}
	if !idx.Enabled || idx.Stats == nil || idx.Stats.Writes != 4 || idx.Stats.Dropped != 0 {
		t.Fatalf("trace tier stats: %+v", idx.Stats)
	}
	if len(idx.Traces) != 3 {
		t.Fatalf("estimate index scan found %d hops, want 3", len(idx.Traces))
	}
	var traceID string
	for _, tr := range idx.Traces {
		if tr.Status == http.StatusOK && tr.Micros > 0 {
			traceID = tr.TraceID
		}
	}
	if traceID == "" {
		t.Fatalf("no OK estimate hop in %+v", idx.Traces)
	}

	code, before := getBody(t, dbg+"/debug/trace/"+traceID)
	if code != http.StatusOK {
		t.Fatalf("debug/trace pre-restart: %d %s", code, before)
	}
	var pre serve.DebugTraceResponse
	if err := json.Unmarshal(before, &pre); err != nil {
		t.Fatal(err)
	}
	if !pre.Found || len(pre.Hops) == 0 || pre.Hops[0].Endpoint != "/v1/estimate" {
		t.Fatalf("pre-restart trace: %+v", pre)
	}

	if err := rt1.shutdown(10 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Fresh process image over the same trace directory.
	rt2 := startTraceServer(t, dir)
	defer func() {
		if err := rt2.shutdown(10 * time.Second); err != nil {
			t.Errorf("second shutdown: %v", err)
		}
	}()
	dbg2 := "http://" + rt2.debugAddr
	code, after := getBody(t, dbg2+"/debug/trace/"+traceID)
	if code != http.StatusOK {
		t.Fatalf("debug/trace post-restart: %d %s", code, after)
	}
	if string(before) != string(after) {
		t.Fatalf("trace rendering changed across restart:\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestMetricsExemplarsResolveEndToEnd: the /metrics exposition's
// exemplar comments carry trace ids that resolve through GET
// /debug/trace/{id} on the same instance.
func TestMetricsExemplarsResolveEndToEnd(t *testing.T) {
	dir := t.TempDir()
	rt := startTraceServer(t, dir)
	defer func() {
		if err := rt.shutdown(10 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	api, dbg := "http://"+rt.apiAddr, "http://"+rt.debugAddr

	src := suiteNetlists(t)["sc-exp1"]
	if code, _, b := postJSON(t, api+"/v1/estimate", serve.EstimateRequest{Netlist: src}); code != http.StatusOK {
		t.Fatalf("estimate: %d %s", code, b)
	}
	rt.handler.SyncTraces()

	// This instance's one persisted trace.
	_, idxBody := getBody(t, dbg+"/debug/traces")
	var idx serve.DebugTracesResponse
	if err := json.Unmarshal(idxBody, &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Traces) != 1 {
		t.Fatalf("index scan: %+v", idx.Traces)
	}
	ownTrace := idx.Traces[0].TraceID

	resp, err := http.Get(dbg + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4" {
		t.Fatalf("metrics Content-Type %q", got)
	}
	ids := regexp.MustCompile(`# EXEMPLAR \S+ trace_id=([0-9a-f]{32}) `).FindAllSubmatch(metrics, -1)
	if len(ids) == 0 {
		t.Fatal("exposition carries no exemplar comments")
	}
	found := false
	for _, m := range ids {
		if string(m[1]) == ownTrace {
			found = true
		}
	}
	if !found {
		t.Fatalf("no exemplar carries this instance's trace %s", ownTrace)
	}
	code, body := getBody(t, dbg+"/debug/trace/"+ownTrace)
	if code != http.StatusOK {
		t.Fatalf("debug/trace: %d %s", code, body)
	}
	var tr serve.DebugTraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if !tr.Found {
		t.Fatalf("exemplar trace id %s does not resolve: %s", ownTrace, body)
	}
}

// TestDebugPprofEndToEnd: the runtime profiler rides the -debug-addr
// socket; a one-second CPU profile comes back as a well-formed gzip
// stream with non-trivial content.
func TestDebugPprofEndToEnd(t *testing.T) {
	base := startTestRunning(t, options{debugAddr: "127.0.0.1:0"}, nil, nil)

	// The index page lists the available profiles.
	code, body := getBody(t, base.debug+"/debug/pprof/")
	if code != http.StatusOK || len(body) == 0 {
		t.Fatalf("pprof index: %d (%d bytes)", code, len(body))
	}

	// Keep the process busy so the profile has samples to collect.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		sink := 0.0
		for i := 0; ; i++ {
			select {
			case <-stop:
				_ = sink
				return
			default:
				sink += float64(i%7919) * 1.0000001
			}
		}
	}()
	defer func() { close(stop); <-done }()

	resp, err := http.Get(base.debug + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("pprof profile: %d %s", resp.StatusCode, b)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatalf("profile body is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("profile gunzip: %v", err)
	}
	if len(raw) < 64 {
		t.Fatalf("decoded profile implausibly small: %d bytes", len(raw))
	}
}
