package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"maest/internal/serve"
)

const repoTestdata = "../../testdata"

// startTestServer boots the real service on an ephemeral port and
// tears it down through the production drain path.
func startTestServer(t *testing.T, o options, hook func()) string {
	return startTestRunning(t, o, nil, hook).api
}

// testBase holds the base URLs of a running test instance.
type testBase struct {
	api   string
	debug string // empty unless o.debugAddr was set
}

// startTestRunning is startTestServer with access to the observatory
// listener and the access-log writer.
func startTestRunning(t *testing.T, o options, accessLog io.Writer, hook func()) testBase {
	t.Helper()
	if o.addr == "" {
		o.addr = "127.0.0.1:0"
	}
	if o.proc == "" {
		o.proc = "nmos25"
	}
	if o.cacheSize == 0 {
		o.cacheSize = 1024
	}
	if o.timeout == 0 {
		o.timeout = 30 * time.Second
	}
	if o.maxBytes == 0 {
		o.maxBytes = 8 << 20
	}
	rt, err := startServer(context.Background(), o, accessLog, hook)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := rt.shutdown(5 * time.Second); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	base := testBase{api: "http://" + rt.apiAddr}
	if rt.debug != nil {
		base.debug = "http://" + rt.debugAddr
	}
	return base
}

func postJSON(t *testing.T, url string, v any) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// scrapeCounter reads one counter from the live /metrics exposition.
func scrapeCounter(t *testing.T, base, name string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^` + name + ` (\d+)$`).FindSubmatch(b)
	if m == nil {
		t.Fatalf("metric %s not found in exposition", name)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestServeEndToEnd drives the real HTTP server over a socket: the
// same netlist twice must answer identically with the repeat recorded
// as a content-addressed cache hit.
func TestServeEndToEnd(t *testing.T) {
	base := startTestServer(t, options{}, nil)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	netlist, err := os.ReadFile(filepath.Join(repoTestdata, "demo.mnet"))
	if err != nil {
		t.Fatal(err)
	}
	req := serve.EstimateRequest{Netlist: string(netlist)}
	hits0 := scrapeCounter(t, base, "maest_serve_cache_hits_total")

	code, _, first := postJSON(t, base+"/v1/estimate", req)
	if code != http.StatusOK {
		t.Fatalf("first estimate: %d %s", code, first)
	}
	code, _, second := postJSON(t, base+"/v1/estimate", req)
	if code != http.StatusOK {
		t.Fatalf("second estimate: %d %s", code, second)
	}

	var r1, r2 serve.EstimateResponse
	if err := json.Unmarshal(first, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit || !r2.CacheHit {
		t.Fatalf("cache flags: first=%v second=%v", r1.CacheHit, r2.CacheHit)
	}
	r2.CacheHit = false
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("answers differ:\n%s\n%s", b1, b2)
	}
	if hits := scrapeCounter(t, base, "maest_serve_cache_hits_total") - hits0; hits != 1 {
		t.Fatalf("maest_serve_cache_hits_total delta = %d, want 1", hits)
	}
}

// TestServeOverloadSheds429 pins the backpressure contract over a
// real socket: with one concurrency slot deterministically held, a
// batch request is shed with 429 and Retry-After.
func TestServeOverloadSheds429(t *testing.T) {
	acquired := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	base := startTestServer(t, options{concurrency: 1, retryAfter: 3}, func() {
		once.Do(func() {
			close(acquired)
			<-gate
		})
	})

	netlist, err := os.ReadFile(filepath.Join(repoTestdata, "demo.mnet"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _, body := postJSON(t, base+"/v1/estimate", serve.EstimateRequest{Netlist: string(netlist)})
		if code != http.StatusOK {
			t.Errorf("held request: %d %s", code, body)
		}
	}()
	<-acquired // the only slot is now held mid-estimate

	batch := serve.BatchRequest{Modules: []serve.ModuleInput{{Netlist: string(netlist)}}}
	code, hdr, body := postJSON(t, base+"/v1/estimate/batch", batch)
	if code != http.StatusTooManyRequests {
		t.Fatalf("batch under overload: %d %s", code, body)
	}
	if got := hdr.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After %q, want the configured -retry-after value 3", got)
	}
	close(gate)
	wg.Wait()

	// With the slot released the same batch succeeds.
	code, _, body = postJSON(t, base+"/v1/estimate/batch", batch)
	if code != http.StatusOK {
		t.Fatalf("batch after release: %d %s", code, body)
	}
	var br serve.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	// The held single-module estimate already populated the cache.
	if br.CacheHits != 1 {
		t.Fatalf("batch cache hits = %d, want 1", br.CacheHits)
	}
}

// TestServeCongestionEndToEnd drives POST /v1/congestion over the
// socket: deterministic answers, with the repeat served from the
// congestion cache and its hit visible on /metrics.
func TestServeCongestionEndToEnd(t *testing.T) {
	base := startTestServer(t, options{}, nil)
	netlist, err := os.ReadFile(filepath.Join(repoTestdata, "demo.mnet"))
	if err != nil {
		t.Fatal(err)
	}
	req := serve.CongestionRequest{Netlist: string(netlist), Rows: 3, Model: "crossing"}
	hits0 := scrapeCounter(t, base, "maest_serve_congest_cache_hits_total")
	misses0 := scrapeCounter(t, base, "maest_serve_congest_cache_misses_total")

	code, _, first := postJSON(t, base+"/v1/congestion", req)
	if code != http.StatusOK {
		t.Fatalf("first congestion: %d %s", code, first)
	}
	code, _, second := postJSON(t, base+"/v1/congestion", req)
	if code != http.StatusOK {
		t.Fatalf("second congestion: %d %s", code, second)
	}
	var r1, r2 serve.CongestionResponse
	if err := json.Unmarshal(first, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit || !r2.CacheHit {
		t.Fatalf("cache flags: first=%v second=%v", r1.CacheHit, r2.CacheHit)
	}
	if r1.Model != "crossing" || r1.Rows != 3 || len(r1.Channels) != 4 {
		t.Fatalf("unexpected map header: %+v", r1)
	}
	r2.CacheHit = false
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("answers differ:\n%s\n%s", b1, b2)
	}
	if hits := scrapeCounter(t, base, "maest_serve_congest_cache_hits_total") - hits0; hits != 1 {
		t.Fatalf("congest cache hits delta = %d, want 1", hits)
	}
	if misses := scrapeCounter(t, base, "maest_serve_congest_cache_misses_total") - misses0; misses != 1 {
		t.Fatalf("congest cache misses delta = %d, want 1", misses)
	}
}

// TestServeBatchFanout exercises the batch endpoint at chip scale
// over the socket, then confirms the repeat is answered from cache.
func TestServeBatchFanout(t *testing.T) {
	base := startTestServer(t, options{}, nil)
	var mods []serve.ModuleInput
	for i := 0; i < 20; i++ {
		var b bytes.Buffer
		fmt.Fprintf(&b, "module chip%d\nport in a\n", i)
		prev := "a"
		for g := 0; g <= i; g++ {
			fmt.Fprintf(&b, "device g%d INV %s w%d\n", g, prev, g)
			prev = fmt.Sprintf("w%d", g)
		}
		fmt.Fprintf(&b, "port out %s\nend\n", prev)
		mods = append(mods, serve.ModuleInput{Netlist: b.String()})
	}
	req := serve.BatchRequest{Modules: mods, Workers: 4}
	code, _, body := postJSON(t, base+"/v1/estimate/batch", req)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	var br serve.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Modules) != 20 || br.CacheHits != 0 {
		t.Fatalf("modules=%d hits=%d", len(br.Modules), br.CacheHits)
	}
	for i, m := range br.Modules {
		if want := fmt.Sprintf("chip%d", i); m.Module != want {
			t.Fatalf("module %d answered as %q, want %q", i, m.Module, want)
		}
	}
	code, _, body = postJSON(t, base+"/v1/estimate/batch", req)
	if code != http.StatusOK {
		t.Fatalf("repeat batch: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.CacheHits != 20 {
		t.Fatalf("repeat batch hits = %d, want 20", br.CacheHits)
	}
}

// TestShutdownDrainsInflight verifies graceful shutdown: a request
// running when Shutdown begins still completes successfully.
func TestShutdownDrainsInflight(t *testing.T) {
	acquired := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	rt, err := startServer(context.Background(), options{
		addr: "127.0.0.1:0", proc: "nmos25", cacheSize: 16,
		timeout: 30 * time.Second, maxBytes: 8 << 20,
	}, nil, func() {
		once.Do(func() {
			close(acquired)
			<-gate
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	netlist, err := os.ReadFile(filepath.Join(repoTestdata, "demo.mnet"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		code, _, body := postJSON(t, "http://"+rt.apiAddr+"/v1/estimate",
			serve.EstimateRequest{Netlist: string(netlist)})
		if code != http.StatusOK {
			done <- fmt.Errorf("in-flight request: %d %s", code, body)
			return
		}
		done <- nil
	}()
	<-acquired

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- rt.shutdown(10 * time.Second) }()
	// Give Shutdown a moment to close the listener, then let the
	// in-flight estimate finish inside the drain window.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	if err := <-done; err != nil {
		t.Error(err)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("drain failed: %v", err)
	}
}

// TestDebugListenerEndToEnd is the observatory acceptance test over
// real sockets: after a batch of mixed estimate/batch/congestion
// calls, GET /debug/flight on the -debug-addr listener returns the
// last N requests with per-stage durations and latency quantiles,
// while the service port keeps the debug surface unreachable.
func TestDebugListenerEndToEnd(t *testing.T) {
	var logBuf bytes.Buffer
	base := startTestRunning(t, options{
		flight:    64,
		debugAddr: "127.0.0.1:0",
	}, &logBuf, nil)
	if base.debug == "" {
		t.Fatal("debug listener did not start")
	}

	netlist, err := os.ReadFile(filepath.Join(repoTestdata, "demo.mnet"))
	if err != nil {
		t.Fatal(err)
	}
	est := serve.EstimateRequest{Netlist: string(netlist)}
	if code, hdr, body := postJSON(t, base.api+"/v1/estimate", est); code != http.StatusOK {
		t.Fatalf("estimate: %d %s", code, body)
	} else if hdr.Get("X-Request-Id") == "" {
		t.Fatal("estimate response missing X-Request-Id")
	}
	if code, _, body := postJSON(t, base.api+"/v1/estimate", est); code != http.StatusOK { // cache hit
		t.Fatalf("repeat estimate: %d %s", code, body)
	}
	batch := serve.BatchRequest{Modules: []serve.ModuleInput{{Netlist: string(netlist)}}}
	if code, _, body := postJSON(t, base.api+"/v1/estimate/batch", batch); code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	cong := serve.CongestionRequest{Netlist: string(netlist), Rows: 3}
	if code, _, body := postJSON(t, base.api+"/v1/congestion", cong); code != http.StatusOK {
		t.Fatalf("congestion: %d %s", code, body)
	}

	resp, err := http.Get(base.debug + "/debug/flight?n=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/flight: %d %s", resp.StatusCode, body)
	}
	var flight serve.FlightResponse
	if err := json.Unmarshal(body, &flight); err != nil {
		t.Fatalf("debug/flight not JSON: %v\n%s", err, body)
	}
	if !flight.Enabled || flight.Total != 4 || len(flight.Requests) != 4 {
		t.Fatalf("flight header: enabled=%v total=%d n=%d",
			flight.Enabled, flight.Total, len(flight.Requests))
	}
	endpoints := make(map[string]int)
	for _, r := range flight.Requests {
		endpoints[r.Endpoint]++
		if r.Status != http.StatusOK || r.ID == "" || r.Micros <= 0 {
			t.Fatalf("record incomplete: %+v", r)
		}
		if len(r.Stages) == 0 {
			t.Fatalf("record %s has no per-stage durations", r.ID)
		}
	}
	if endpoints["/v1/estimate"] != 2 || endpoints["/v1/estimate/batch"] != 1 || endpoints["/v1/congestion"] != 1 {
		t.Fatalf("endpoint mix: %v", endpoints)
	}
	// The latency section has a fixed shape: every registered endpoint
	// histogram, zero-count ones included (/v1/estimate/delta here).
	if len(flight.Latency) != 6 {
		t.Fatalf("latency section has %d endpoints, want 6", len(flight.Latency))
	}

	// /debug/slowest ranks by duration and carries span breakdowns.
	resp, err = http.Get(base.debug + "/debug/slowest?k=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var slowest serve.SlowestResponse
	if err := json.Unmarshal(body, &slowest); err != nil {
		t.Fatalf("debug/slowest not JSON: %v\n%s", err, body)
	}
	if !slowest.Enabled || len(slowest.Requests) != 2 {
		t.Fatalf("slowest: enabled=%v n=%d", slowest.Enabled, len(slowest.Requests))
	}

	// The debug surface must not leak onto the service port.
	resp, err = http.Get(base.api + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("debug surface reachable on the API port: %d", resp.StatusCode)
	}

	// The access log saw all four API requests as JSON lines.
	lines := bytes.Split(bytes.TrimSpace(logBuf.Bytes()), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("access log has %d lines, want 4:\n%s", len(lines), logBuf.String())
	}
	for i, line := range lines {
		var e map[string]any
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("access line %d not JSON: %v\n%s", i, err, line)
		}
	}
}

// TestOpenAccessLog covers the flag's three shapes.
func TestOpenAccessLog(t *testing.T) {
	if w, _, err := openAccessLog(""); err != nil || w != nil {
		t.Fatalf("empty: %v %v", w, err)
	}
	if w, _, err := openAccessLog("-"); err != nil || w != os.Stdout {
		t.Fatalf("stdout: %v %v", w, err)
	}
	path := filepath.Join(t.TempDir(), "access.log")
	w, closeLog, err := openAccessLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("{}\n")); err != nil {
		t.Fatal(err)
	}
	if err := closeLog(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "{}\n" {
		t.Fatalf("file log round-trip: %q %v", b, err)
	}
}
