package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"maest/internal/gen"
	"maest/internal/hdl"
	"maest/internal/netlist"
	"maest/internal/serve"
	"maest/internal/tech"
)

// suiteNetlists renders the golden generator suites (the same modules
// the bench harness and accuracy watchdog replay) to mnet source, the
// shape the wire carries.
func suiteNetlists(t *testing.T) map[string]string {
	t.Helper()
	p, err := tech.Lookup("nmos25")
	if err != nil {
		t.Fatal(err)
	}
	var circuits []*netlist.Circuit
	fc, err := gen.FullCustomSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := gen.StandardCellSuite(p)
	if err != nil {
		t.Fatal(err)
	}
	circuits = append(circuits, fc...)
	circuits = append(circuits, sc...)
	out := make(map[string]string, len(circuits))
	for _, c := range circuits {
		// ExpandTransistors mints "$"-suffixed instance names, which
		// WriteMnet refuses; rename them like a designer saving the
		// expanded schematic would.
		for _, d := range c.Devices {
			d.Name = strings.ReplaceAll(d.Name, "$", "_")
		}
		for _, n := range c.Nets {
			n.Name = strings.ReplaceAll(n.Name, "$", "_")
		}
		var buf bytes.Buffer
		if err := hdl.WriteMnet(&buf, c); err != nil {
			t.Fatalf("render %s: %v", c.Name, err)
		}
		out[c.Name] = buf.String()
	}
	return out
}

// startStoreServer boots an instance with the persistent store mounted
// and returns it WITHOUT registering cleanup — restart tests own the
// shutdown ordering.
func startStoreServer(t *testing.T, dir string) *running {
	t.Helper()
	o := options{
		addr:          "127.0.0.1:0",
		proc:          "nmos25",
		cacheSize:     1024,
		timeout:       30 * time.Second,
		maxBytes:      8 << 20,
		storeDir:      dir,
		storeMaxBytes: 1 << 30,
	}
	rt, err := startServer(context.Background(), o, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// normalizeEstimate clears the fields that legitimately differ between
// a fresh computation and a warm answer (the cache-hit flag), so what
// remains must be byte-identical.
func normalizeEstimate(t *testing.T, raw []byte) []byte {
	t.Helper()
	var r serve.EstimateResponse
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("decode estimate: %v (%s)", err, raw)
	}
	r.CacheHit = false
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func normalizeCongestion(t *testing.T, raw []byte) []byte {
	t.Helper()
	var r serve.CongestionResponse
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatalf("decode congestion: %v (%s)", err, raw)
	}
	r.CacheHit = false
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServeWarmStartFromStore is the warm-start contract end to end:
// populate the store through a live server, stop it, restart against
// the same -store-dir, and require the first request of every suite
// module to be served from disk with a Result byte-identical to the
// original computation — the differential test over the golden suites.
func TestServeWarmStartFromStore(t *testing.T) {
	dir := t.TempDir()
	mods := suiteNetlists(t)

	// Cold pass: every answer is a fresh computation, persisted
	// write-behind; shutdown flushes the queue into the store.
	rt1 := startStoreServer(t, dir)
	base1 := "http://" + rt1.apiAddr
	fresh := make(map[string][]byte, len(mods))
	freshCongest := make(map[string][]byte, len(mods))
	for name, src := range mods {
		code, _, body := postJSON(t, base1+"/v1/estimate", serve.EstimateRequest{Netlist: src})
		if code != http.StatusOK {
			t.Fatalf("cold estimate %s: %d %s", name, code, body)
		}
		var r serve.EstimateResponse
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		if r.CacheHit {
			t.Fatalf("cold estimate %s claims a cache hit", name)
		}
		fresh[name] = body

		code, _, cbody := postJSON(t, base1+"/v1/congestion", serve.CongestionRequest{Netlist: src})
		if code != http.StatusOK {
			t.Fatalf("cold congestion %s: %d %s", name, code, cbody)
		}
		freshCongest[name] = cbody
	}
	if err := rt1.shutdown(10 * time.Second); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	// Warm pass: a fresh process image (new caches, same store dir).
	rt2 := startStoreServer(t, dir)
	base2 := "http://" + rt2.apiAddr
	defer func() {
		if err := rt2.shutdown(10 * time.Second); err != nil {
			t.Errorf("second shutdown: %v", err)
		}
	}()

	hits0 := scrapeCounter(t, base2, "maest_store_hits_total")
	for name, src := range mods {
		code, _, body := postJSON(t, base2+"/v1/estimate", serve.EstimateRequest{Netlist: src})
		if code != http.StatusOK {
			t.Fatalf("warm estimate %s: %d %s", name, code, body)
		}
		var r serve.EstimateResponse
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		if !r.CacheHit {
			t.Fatalf("warm estimate %s not served from the store", name)
		}
		if got, want := normalizeEstimate(t, body), normalizeEstimate(t, fresh[name]); !bytes.Equal(got, want) {
			t.Fatalf("%s: warm answer differs from fresh computation:\n%s\n%s", name, got, want)
		}

		code, _, cbody := postJSON(t, base2+"/v1/congestion", serve.CongestionRequest{Netlist: src})
		if code != http.StatusOK {
			t.Fatalf("warm congestion %s: %d %s", name, code, cbody)
		}
		var cr serve.CongestionResponse
		if err := json.Unmarshal(cbody, &cr); err != nil {
			t.Fatal(err)
		}
		if !cr.CacheHit {
			t.Fatalf("warm congestion %s not served from the store", name)
		}
		if got, want := normalizeCongestion(t, cbody), normalizeCongestion(t, freshCongest[name]); !bytes.Equal(got, want) {
			t.Fatalf("%s: warm congestion differs from fresh analysis:\n%s\n%s", name, got, want)
		}
	}
	if hits := scrapeCounter(t, base2, "maest_store_hits_total") - hits0; hits < int64(2*len(mods)) {
		t.Fatalf("store hits delta %d, want at least %d (every warm request)", hits, 2*len(mods))
	}

	// A warm batch over the whole suite is all cache hits: store hits
	// hydrate the LRU and count as cached modules on the wire.
	var batch serve.BatchRequest
	var order []string
	for name, src := range mods {
		batch.Modules = append(batch.Modules, serve.ModuleInput{Netlist: src})
		order = append(order, name)
	}
	code, _, body := postJSON(t, base2+"/v1/estimate/batch", batch)
	if code != http.StatusOK {
		t.Fatalf("warm batch: %d %s", code, body)
	}
	var br serve.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.CacheHits != len(batch.Modules) {
		t.Fatalf("warm batch cache hits %d/%d (order %v)", br.CacheHits, len(batch.Modules), order)
	}
}

// TestServeStoreHealthAndDebug pins the operator surface: the /healthz
// store block, the /debug/store snapshot, and the maest_store_* metrics
// on a live instance.
func TestServeStoreHealthAndDebug(t *testing.T) {
	dir := t.TempDir()
	base := startTestRunning(t, options{storeDir: dir, storeMaxBytes: 1 << 30, debugAddr: "127.0.0.1:0"}, nil, nil)

	// One computed estimate, so the store sees traffic.
	src := suiteNetlists(t)["sc-exp1"]
	if src == "" {
		t.Fatal("sc-exp1 missing from the golden suites")
	}
	code, _, body := postJSON(t, base.api+"/v1/estimate", serve.EstimateRequest{Netlist: src})
	if code != http.StatusOK {
		t.Fatalf("estimate: %d %s", code, body)
	}

	resp, err := http.Get(base.api + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Store == nil {
		t.Fatal("healthz has no store block with -store-dir set")
	}
	if h.Store.Status != "ok" {
		t.Fatalf("store status %q, want ok", h.Store.Status)
	}

	// The write-behind persist is asynchronous; poll the debug snapshot
	// until it lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base.debug + "/debug/store")
		if err != nil {
			t.Fatal(err)
		}
		var d serve.DebugStoreResponse
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !d.Enabled || d.Stats == nil {
			t.Fatal("debug/store reports disabled with -store-dir set")
		}
		if d.Stats.Puts >= 1 {
			if !strings.HasSuffix(d.Stats.Dir, dir[strings.LastIndex(dir, "/")+1:]) {
				t.Fatalf("store dir %q does not match %q", d.Stats.Dir, dir)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("write-behind persist never landed: %+v", d.Stats)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The store metrics are on both expositions.
	if n := scrapeCounter(t, base.api, "maest_store_puts_total"); n < 1 {
		t.Fatalf("maest_store_puts_total = %d, want >= 1", n)
	}
}

// TestServeWithoutStoreUnchanged guards the default path: no
// -store-dir means no store block in /healthz and a disabled
// /debug/store, with estimates behaving exactly as before.
func TestServeWithoutStoreUnchanged(t *testing.T) {
	base := startTestRunning(t, options{debugAddr: "127.0.0.1:0"}, nil, nil)
	resp, err := http.Get(base.api + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Store != nil {
		t.Fatalf("healthz store block present without -store-dir: %+v", h.Store)
	}
	dresp, err := http.Get(base.debug + "/debug/store")
	if err != nil {
		t.Fatal(err)
	}
	var d serve.DebugStoreResponse
	if err := json.NewDecoder(dresp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if d.Enabled || d.Stats != nil {
		t.Fatalf("debug/store enabled without -store-dir: %+v", d)
	}
}
