package main

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"maest/internal/client"
	"maest/internal/serve"
	"maest/internal/store"
)

// fpModule renders one chained-inverter module as mnet source.
func fpModule(name string, stages int) serve.ModuleInput {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\nport in a\n", name)
	prev := "a"
	for i := 0; i < stages; i++ {
		next := fmt.Sprintf("n%d", i)
		fmt.Fprintf(&b, "device g%d INV %s %s\n", i, prev, next)
		prev = next
	}
	fmt.Fprintf(&b, "port out %s\nend\n", prev)
	return serve.ModuleInput{Netlist: b.String()}
}

func fpChipRequest(budget int) serve.FloorplanRequest {
	return serve.FloorplanRequest{
		Chip: "e2e-chip",
		Modules: []serve.ModuleInput{
			fpModule("ea", 3), fpModule("eb", 5), fpModule("ec", 7), fpModule("ed", 4),
		},
		Nets: []serve.GlobalNetBody{
			{Name: "n0", Pins: []serve.GlobalPinBody{
				{Module: "ea", Port: "out"}, {Module: "eb", Port: "in"},
			}},
			{Name: "n1", Pins: []serve.GlobalPinBody{
				{Module: "eb", Port: "out"}, {Module: "ec", Port: "in"},
			}},
			{Name: "n2", Pins: []serve.GlobalPinBody{
				{Module: "ec", Port: "out"}, {Module: "ed", Port: "in"},
			}},
		},
		CongestWeight: 1.5,
		WireWeight:    0.5,
		Budget:        budget,
		Seed:          1988,
	}
}

// TestFloorplanServiceEndToEnd is the acceptance flow: submit a chip
// netlist with a congestion weight over the real socket, poll the job
// to completion, check the plan chose one shape candidate per module
// and reports per-channel overflow probabilities, then restart the
// server against the same -store-dir and require GET /v1/jobs/{id} to
// answer byte-identically.
func TestFloorplanServiceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	rt1 := startStoreServer(t, dir)
	c1 := client.New("http://" + rt1.apiAddr)
	ctx := context.Background()

	req := fpChipRequest(150)
	sub, err := c1.FloorplanSubmit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c1.WaitJob(ctx, sub.ID, 2*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := fin.Result
	if res == nil || res.Chip != "e2e-chip" {
		t.Fatalf("job finished without a result: %+v", fin)
	}
	// (a) one chosen candidate per module.
	if len(res.Blocks) != len(req.Modules) {
		t.Fatalf("%d blocks for %d modules", len(res.Blocks), len(req.Modules))
	}
	seen := map[string]bool{}
	for _, b := range res.Blocks {
		if b.ShapeIndex < 0 || b.Rows < 1 {
			t.Fatalf("block %s chose no candidate: %+v", b.Name, b)
		}
		seen[b.Name] = true
	}
	if len(seen) != len(req.Modules) {
		t.Fatalf("blocks cover %d distinct modules, want %d", len(seen), len(req.Modules))
	}
	// (b) per-channel overflow probabilities for every module.
	if len(res.Congestion) != len(req.Modules) {
		t.Fatalf("congestion detail for %d modules, want %d", len(res.Congestion), len(req.Modules))
	}
	for _, mc := range res.Congestion {
		if len(mc.Channels) == 0 {
			t.Fatalf("module %s reports no channels", mc.Module)
		}
		for _, ch := range mc.Channels {
			if ch.POverflow < 0 || ch.POverflow > 1 {
				t.Fatalf("module %s channel %d P(overflow) = %g", mc.Module, ch.Index, ch.POverflow)
			}
		}
	}

	// Capture the poll answer's exact bytes, then restart.
	code, before := getBody(t, "http://"+rt1.apiAddr+"/v1/jobs/"+sub.ID)
	if code != http.StatusOK {
		t.Fatalf("pre-restart poll: %d %s", code, before)
	}
	if err := rt1.shutdown(10 * time.Second); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	rt2 := startStoreServer(t, dir)
	defer func() {
		if err := rt2.shutdown(10 * time.Second); err != nil {
			t.Errorf("second shutdown: %v", err)
		}
	}()
	// (c) the rehydrated record is byte-identical.
	code, after := getBody(t, "http://"+rt2.apiAddr+"/v1/jobs/"+sub.ID)
	if code != http.StatusOK {
		t.Fatalf("post-restart poll: %d %s", code, after)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("restart changed the job record:\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestServeDrainCancelsJobs pins the graceful-drain contract: shutdown
// with an anneal in flight cancels it, persists the cancelled record,
// and leaves no floorplan goroutine behind.
func TestServeDrainCancelsJobs(t *testing.T) {
	dir := t.TempDir()
	rt := startStoreServer(t, dir)
	c := client.New("http://" + rt.apiAddr)
	ctx := context.Background()

	req := fpChipRequest(50_000_000) // will not finish on its own
	sub, err := c.FloorplanSubmit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// Make sure the anneal is actually running when the drain starts.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := c.Job(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == serve.JobAnnealing {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", j.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := rt.shutdown(10 * time.Second); err != nil {
		t.Fatalf("shutdown with job in flight: %v", err)
	}

	// No job goroutine survives FlushStore: nothing on any stack still
	// sits in the annealer.
	var stacks bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&stacks, 2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stacks.String(), "internal/floorplan") {
		t.Fatalf("floorplan goroutine survived the drain:\n%s", stacks.String())
	}

	// The interrupted job was persisted as cancelled before the store
	// closed.
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	raw, err := hex.DecodeString(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var key store.Key
	copy(key[:], raw)
	b, ok, err := st.Get(store.NSFloorplan, key)
	if err != nil || !ok {
		t.Fatalf("cancelled job not in store: ok=%v err=%v", ok, err)
	}
	var rec serve.JobResponse
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != serve.JobCancelled {
		t.Fatalf("persisted state %q, want cancelled", rec.State)
	}
}
