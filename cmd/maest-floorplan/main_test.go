package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maest/internal/db"
	"maest/internal/tech"
)

func TestRunGenerate(t *testing.T) {
	if err := run(options{proc: "nmos25", generate: true, modules: 3, seed: 1}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromDatabaseFile(t *testing.T) {
	p, err := tech.Lookup("nmos25")
	if err != nil {
		t.Fatal(err)
	}
	d, err := generateDB(context.Background(), p, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "est.db")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Write(f, d); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(options{proc: "nmos25", seed: 1}, []string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExperiment(t *testing.T) {
	if err := run(options{proc: "nmos25", experiment: true, modules: 3, seed: 1}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRunGenerateTraced checks the chip-scale trace: per-module
// estimate spans under the estimate_chip span, then the floorplan
// span.
func TestRunGenerateTraced(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	if err := run(options{proc: "nmos25", generate: true, modules: 3, seed: 1, trace: trace, metrics: true}, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"span":"estimate_chip"`, `"span":"estimate"`, `"span":"floorplan"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace missing %s:\n%s", want, data)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(options{proc: "nope", generate: true, modules: 3, seed: 1}, nil); err == nil {
		t.Error("unknown process accepted")
	}
	if err := run(options{proc: "nmos25", modules: 3, seed: 1}, nil); err == nil {
		t.Error("missing database file accepted")
	}
	if err := run(options{proc: "nmos25", modules: 3, seed: 1}, []string{"/nope.db"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(options{proc: "nmos25", generate: true, modules: 1, seed: 1}, nil); err == nil {
		t.Error("1-module chip accepted")
	}
}
