package main

import (
	"os"
	"path/filepath"
	"testing"

	"maest/internal/db"
	"maest/internal/tech"
)

func TestRunGenerate(t *testing.T) {
	if err := run("nmos25", true, false, 3, 1, "", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromDatabaseFile(t *testing.T) {
	p, err := tech.Lookup("nmos25")
	if err != nil {
		t.Fatal(err)
	}
	d, err := generateDB(p, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "est.db")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Write(f, d); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("nmos25", false, false, 0, 1, "", []string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExperiment(t *testing.T) {
	if err := run("nmos25", false, true, 3, 1, "", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", true, false, 3, 1, "", nil); err == nil {
		t.Error("unknown process accepted")
	}
	if err := run("nmos25", false, false, 3, 1, "", nil); err == nil {
		t.Error("missing database file accepted")
	}
	if err := run("nmos25", false, false, 3, 1, "", []string{"/nope.db"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run("nmos25", true, false, 1, 1, "", nil); err == nil {
		t.Error("1-module chip accepted")
	}
}
