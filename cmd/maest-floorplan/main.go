// Command maest-floorplan floor-plans an estimate database produced
// by maest (or a generated random chip), and runs the §7
// iteration-reduction experiment comparing estimator-driven and
// naive-guess floor planning.
//
// Usage:
//
//	maest-floorplan estimates.db            # plan a database
//	maest-floorplan -generate -modules 6    # generate, estimate, plan
//	maest-floorplan -experiment -modules 6  # iteration experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"maest/internal/core"
	"maest/internal/db"
	"maest/internal/floorplan"
	"maest/internal/gen"
	"maest/internal/netlist"
	"maest/internal/tech"
)

func main() {
	var (
		procFlag   = flag.String("proc", "nmos25", "builtin process name")
		generate   = flag.Bool("generate", false, "generate a random chip instead of reading a database")
		experiment = flag.Bool("experiment", false, "run the floorplan-iteration experiment (E10)")
		modules    = flag.Int("modules", 6, "module count for generated chips")
		seed       = flag.Int64("seed", 1, "generation and layout seed")
		svgOut     = flag.String("svg", "", "render the floor plan as SVG to this file")
	)
	flag.Parse()
	if err := run(*procFlag, *generate, *experiment, *modules, *seed, *svgOut, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "maest-floorplan:", err)
		os.Exit(1)
	}
}

func run(procName string, generate, experiment bool, modules int, seed int64, svgOut string, args []string) error {
	p, err := tech.Lookup(procName)
	if err != nil {
		return err
	}
	if experiment {
		return runExperiment(p, modules, seed)
	}
	var d *db.Database
	if generate {
		d, err = generateDB(p, modules, seed)
	} else {
		d, err = readDB(args)
	}
	if err != nil {
		return err
	}
	plan, err := floorplan.PlanChip(d)
	if err != nil {
		return err
	}
	fmt.Printf("chip %s: %.0f × %.0f λ = %.0f λ²  (utilization %.1f%%, wire length %.0f λ)\n",
		plan.Chip, plan.Width, plan.Height, plan.Area(), plan.Utilization()*100, plan.WireLength)
	for _, b := range plan.Blocks {
		fmt.Printf("  %-16s at (%6.0f,%6.0f)  %6.0f × %-6.0f shape #%d\n",
			b.Name, b.X, b.Y, b.W, b.H, b.ShapeIndex)
	}
	if len(d.Nets) > 0 {
		gr, err := floorplan.GlobalRoute(d, plan, p, 8)
		if err != nil {
			return err
		}
		fmt.Printf("global routing: %.0f λ of wire, %.0f λ² wiring area, worst bin congestion %.2f\n",
			gr.WireLength, gr.WiringArea, gr.MaxCongestion)
	}
	if svgOut != "" {
		f, err := os.Create(svgOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := floorplan.WriteSVG(f, plan, 1); err != nil {
			return err
		}
		fmt.Printf("rendered floor plan SVG to %s\n", svgOut)
	}
	return nil
}

func readDB(args []string) (*db.Database, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("expected one database file (or -generate)")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return db.Read(f)
}

func generateDB(p *tech.Process, modules int, seed int64) (*db.Database, error) {
	chip, err := gen.RandomChip(gen.ChipConfig{
		Name: "random", Modules: modules, MinGates: 20, MaxGates: 80, Seed: seed,
	}, p)
	if err != nil {
		return nil, err
	}
	d := &db.Database{Chip: chip.Name}
	for _, c := range chip.Modules {
		res, err := core.Estimate(c, p, core.SCOptions{TrackSharing: true})
		if err != nil {
			return nil, err
		}
		d.Modules = append(d.Modules, db.FromResult(res))
	}
	for _, gn := range chip.GlobalNets {
		rec := db.GlobalNet{Name: gn.Name}
		for _, pin := range gn.Pins {
			rec.Pins = append(rec.Pins, db.GlobalPin{Module: pin.Module, Port: pin.Port})
		}
		d.Nets = append(d.Nets, rec)
	}
	return d, nil
}

func runExperiment(p *tech.Process, modules int, seed int64) error {
	chip, err := gen.RandomChip(gen.ChipConfig{
		Name: "exp", Modules: modules, MinGates: 20, MaxGates: 60, Seed: seed,
	}, p)
	if err != nil {
		return err
	}
	// Sanity: the modules must be estimable.
	for _, c := range chip.Modules {
		if _, err := netlist.Gather(c, p); err != nil {
			return err
		}
	}
	fmt.Printf("floorplan iteration experiment: %d modules, seed %d (tolerance 25%%)\n", modules, seed)
	for _, src := range []struct {
		name string
		fn   floorplan.ShapeSource
	}{
		{"estimator (this paper)", floorplan.EstimatorShapes},
		{"naive active-area guess", floorplan.NaiveShapes(1.0)},
	} {
		res, err := floorplan.IterationExperiment(chip, p, src.fn, floorplan.ExperimentOptions{Seed: seed})
		if err != nil {
			return err
		}
		status := "converged"
		if !res.Converged {
			status = "did NOT converge"
		}
		fmt.Printf("  %-24s %d iteration(s), misfit history %v, %s; final chip %.0f λ²\n",
			src.name, res.Iterations, res.Misfits, status, res.FinalPlan.Area())
	}
	return nil
}
