// Command maest-floorplan floor-plans an estimate database produced
// by maest (or a generated random chip), and runs the §7
// iteration-reduction experiment comparing estimator-driven and
// naive-guess floor planning.
//
// Usage:
//
//	maest-floorplan estimates.db            # plan a database
//	maest-floorplan -generate -modules 6    # generate, estimate, plan
//	maest-floorplan -generate -anneal -congest-weight 1 -modules 6
//	                                        # Plan-driven annealer
//	maest-floorplan -experiment -modules 6  # iteration experiment
//	maest-floorplan -trace out.jsonl -metrics -generate -modules 6
//
// With -anneal the planner runs the routability-aware path: modules
// compile once into engine Plans held in the same content-addressed
// plan cache maest-serve uses, shape candidates come from
// Plan.Candidates, and the annealer's cost folds in the per-channel
// overflow probabilities weighted by -congest-weight.
//
// The observability flags match maest: -trace streams JSONL spans
// (per-module estimate spans under the chip span, then the floorplan
// span) and prints the summary tree to stderr, -metrics dumps the
// pipeline metrics, -pprof CPU-profiles the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"maest/internal/db"
	"maest/internal/engine"
	"maest/internal/floorplan"
	"maest/internal/gen"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/serve"
	"maest/internal/tech"
)

// options carries the parsed flag values into run.
type options struct {
	proc       string
	generate   bool
	experiment bool
	anneal     bool
	budget     int
	congestW   float64
	wireW      float64
	candidates int
	modules    int
	seed       int64
	svgOut     string
	trace      string
	metrics    bool
	pprof      string
}

func main() {
	var o options
	flag.StringVar(&o.proc, "proc", "nmos25", "builtin process name")
	flag.BoolVar(&o.generate, "generate", false, "generate a random chip instead of reading a database")
	flag.BoolVar(&o.experiment, "experiment", false, "run the floorplan-iteration experiment (E10)")
	flag.BoolVar(&o.anneal, "anneal", false, "run the Plan-driven annealer (requires -generate)")
	flag.IntVar(&o.budget, "budget", floorplan.DefaultBudget, "anneal move budget (<= 0 = greedy)")
	flag.Float64Var(&o.congestW, "congest-weight", 1, "routability weight in the anneal cost")
	flag.Float64Var(&o.wireW, "wire-weight", 0.5, "wire-length weight in the anneal cost")
	flag.IntVar(&o.candidates, "candidates", floorplan.DefaultCandidates, "shape candidates per module")
	flag.IntVar(&o.modules, "modules", 6, "module count for generated chips")
	flag.Int64Var(&o.seed, "seed", 1, "generation and layout seed")
	flag.StringVar(&o.svgOut, "svg", "", "render the floor plan as SVG to this file")
	flag.StringVar(&o.trace, "trace", "", "write a JSONL span trace to this file ('-' = stdout) and a summary tree to stderr")
	flag.BoolVar(&o.metrics, "metrics", false, "dump pipeline metrics (Prometheus text format) to stderr on exit")
	flag.StringVar(&o.pprof, "pprof", "", "write a CPU profile to this file (and a heap snapshot to FILE.heap)")
	flag.Parse()
	if err := run(o, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "maest-floorplan:", err)
		os.Exit(1)
	}
}

func run(o options, args []string) (err error) {
	cli, ctx, err := obs.SetupCLI(context.Background(), o.trace, o.metrics, o.pprof)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := cli.Close(os.Stderr); err == nil {
			err = cerr
		}
	}()

	p, err := tech.Lookup(o.proc)
	if err != nil {
		return err
	}
	if o.experiment {
		return runExperiment(p, o.modules, o.seed)
	}
	if o.anneal {
		if !o.generate {
			return fmt.Errorf("-anneal plans generated chips; pass -generate")
		}
		return runAnneal(ctx, p, o)
	}
	var d *db.Database
	if o.generate {
		d, err = generateDB(ctx, p, o.modules, o.seed)
	} else {
		d, err = readDB(args)
	}
	if err != nil {
		return err
	}
	plan, err := floorplan.PlanChipCtx(ctx, d)
	if err != nil {
		return err
	}
	fmt.Printf("chip %s: %.0f × %.0f λ = %.0f λ²  (utilization %.1f%%, wire length %.0f λ)\n",
		plan.Chip, plan.Width, plan.Height, plan.Area(), plan.Utilization()*100, plan.WireLength)
	for _, b := range plan.Blocks {
		fmt.Printf("  %-16s at (%6.0f,%6.0f)  %6.0f × %-6.0f shape #%d\n",
			b.Name, b.X, b.Y, b.W, b.H, b.ShapeIndex)
	}
	if len(d.Nets) > 0 {
		gr, err := floorplan.GlobalRoute(d, plan, p, 8)
		if err != nil {
			return err
		}
		fmt.Printf("global routing: %.0f λ of wire, %.0f λ² wiring area, worst bin congestion %.2f\n",
			gr.WireLength, gr.WiringArea, gr.MaxCongestion)
	}
	if o.svgOut != "" {
		f, err := os.Create(o.svgOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := floorplan.WriteSVG(f, plan, 1); err != nil {
			return err
		}
		fmt.Printf("rendered floor plan SVG to %s\n", o.svgOut)
	}
	return nil
}

// runAnneal floor-plans a generated chip on the Plan-driven path: one
// engine.Compile per module, memoized in the shared plan cache, then
// the simulated-annealing search over Plan.Candidates shapes with the
// congestion-scored cost.
func runAnneal(ctx context.Context, p *tech.Process, o options) error {
	chip, err := gen.RandomChip(gen.ChipConfig{
		Name: "random", Modules: o.modules, MinGates: 20, MaxGates: 80, Seed: o.seed,
	}, p)
	if err != nil {
		return err
	}
	// The same content-addressed plan cache maest-serve keeps: repeat
	// modules (and repeat runs inside one process) compile once.
	plans := serve.NewPlanCache(1024)
	mods := make([]floorplan.PlanModule, len(chip.Modules))
	for i, c := range chip.Modules {
		key := serve.Key(engine.PlanHash(c, p))
		pl, ok := plans.Get(key)
		if !ok {
			pl, err = engine.CompileCtx(ctx, c, p)
			if err != nil {
				return err
			}
			plans.Put(key, pl)
		}
		mods[i] = floorplan.PlanModule{Name: c.Name, Plan: pl}
	}
	nets := make([]floorplan.Net, len(chip.GlobalNets))
	for i, gn := range chip.GlobalNets {
		pins := make([]floorplan.NetPin, len(gn.Pins))
		for j, pin := range gn.Pins {
			pins[j] = floorplan.NetPin{Module: pin.Module, Port: pin.Port}
		}
		nets[i] = floorplan.Net{Name: gn.Name, Pins: pins}
	}
	plan, err := floorplan.PlanModules(ctx, chip.Name, mods, nets,
		floorplan.WithBudget(o.budget),
		floorplan.WithSeed(o.seed),
		floorplan.WithCongestWeight(o.congestW),
		floorplan.WithWireWeight(o.wireW),
		floorplan.WithCandidates(o.candidates))
	if err != nil {
		return err
	}
	fmt.Printf("chip %s: %.0f × %.0f λ = %.0f λ²  (utilization %.1f%%, wire length %.0f λ)\n",
		plan.Chip, plan.Width, plan.Height, plan.Area(), plan.Utilization()*100, plan.WireLength)
	fmt.Printf("anneal: %d moves, cost %.4g (routability %.4g), plan cache %d entries\n",
		plan.Stats.Iterations, plan.Cost, plan.Routability, plans.Len())
	for _, b := range plan.Blocks {
		fmt.Printf("  %-16s at (%6.0f,%6.0f)  %6.0f × %-6.0f shape #%d rows %d\n",
			b.Name, b.X, b.Y, b.W, b.H, b.ShapeIndex, b.Rows)
	}
	for _, mc := range plan.Congestion {
		fmt.Printf("  congest %-16s rows %-3d ΣP(overflow) %.4g over %d channels\n",
			mc.Module, mc.Rows, mc.POverflowSum, len(mc.Channels))
	}
	if o.svgOut != "" {
		f, err := os.Create(o.svgOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := floorplan.WriteSVG(f, plan, 1); err != nil {
			return err
		}
		fmt.Printf("rendered floor plan SVG to %s\n", o.svgOut)
	}
	return nil
}

func readDB(args []string) (*db.Database, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("expected one database file (or -generate)")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return db.Read(f)
}

func generateDB(ctx context.Context, p *tech.Process, modules int, seed int64) (*db.Database, error) {
	chip, err := gen.RandomChip(gen.ChipConfig{
		Name: "random", Modules: modules, MinGates: 20, MaxGates: 80, Seed: seed,
	}, p)
	if err != nil {
		return nil, err
	}
	// The worker pool gives each module its own estimate span under
	// one chip span and exercises the utilization metrics.
	results, err := engine.EstimateChip(ctx, chip.Modules, p, engine.WithTrackSharing(true))
	if err != nil {
		return nil, err
	}
	d := &db.Database{Chip: chip.Name}
	for _, res := range results {
		d.Modules = append(d.Modules, db.FromResult(res))
	}
	for _, gn := range chip.GlobalNets {
		rec := db.GlobalNet{Name: gn.Name}
		for _, pin := range gn.Pins {
			rec.Pins = append(rec.Pins, db.GlobalPin{Module: pin.Module, Port: pin.Port})
		}
		d.Nets = append(d.Nets, rec)
	}
	return d, nil
}

func runExperiment(p *tech.Process, modules int, seed int64) error {
	chip, err := gen.RandomChip(gen.ChipConfig{
		Name: "exp", Modules: modules, MinGates: 20, MaxGates: 60, Seed: seed,
	}, p)
	if err != nil {
		return err
	}
	// Sanity: the modules must be estimable.
	for _, c := range chip.Modules {
		if _, err := netlist.Gather(c, p); err != nil {
			return err
		}
	}
	fmt.Printf("floorplan iteration experiment: %d modules, seed %d (tolerance 25%%)\n", modules, seed)
	for _, src := range []struct {
		name string
		fn   floorplan.ShapeSource
	}{
		{"estimator (this paper)", floorplan.EstimatorShapes},
		{"naive active-area guess", floorplan.NaiveShapes(1.0)},
	} {
		res, err := floorplan.IterationExperiment(chip, p, src.fn, floorplan.ExperimentOptions{Seed: seed})
		if err != nil {
			return err
		}
		status := "converged"
		if !res.Converged {
			status = "did NOT converge"
		}
		fmt.Printf("  %-24s %d iteration(s), misfit history %v, %s; final chip %.0f λ²\n",
			src.name, res.Iterations, res.Misfits, status, res.FinalPlan.Area())
	}
	return nil
}
