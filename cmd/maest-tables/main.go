// Command maest-tables regenerates the paper's evaluation artifacts:
// Table 1 (Full-Custom estimates vs. synthesized layouts), Table 2
// (Standard-Cell estimates vs. placed-and-routed layouts), and the
// §4.1 numeric claims (central-row feed-through maximum, the Eq. 9
// limit, and Monte Carlo validation of the expectations).
//
// Usage:
//
//	maest-tables [-table 1|2|claims|all] [-proc nmos25] [-seed S]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"maest/internal/prob"
	"maest/internal/report"
	"maest/internal/tech"
)

func main() {
	var (
		table    = flag.String("table", "all", "which artifact: 1, 2, claims, all")
		procFlag = flag.String("proc", "nmos25", "builtin process name")
		seed     = flag.Int64("seed", 1, "layout engine seed")
	)
	flag.Parse()
	if err := run(*table, *procFlag, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "maest-tables:", err)
		os.Exit(1)
	}
}

func run(table, procName string, seed int64) error {
	p, err := tech.Lookup(procName)
	if err != nil {
		return err
	}
	want := func(t string) bool { return table == "all" || table == t }
	shown := false
	if want("1") {
		if err := table1(p, seed); err != nil {
			return err
		}
		shown = true
	}
	if want("2") {
		if shown {
			fmt.Println()
		}
		if err := table2(p, seed); err != nil {
			return err
		}
		shown = true
	}
	if want("claims") {
		if shown {
			fmt.Println()
		}
		if err := claims(); err != nil {
			return err
		}
		shown = true
	}
	if !shown {
		return fmt.Errorf("unknown -table %q (want 1, 2, claims or all)", table)
	}
	return nil
}

func table1(p *tech.Process, seed int64) error {
	rows, err := report.RunTable1(p, seed)
	if err != nil {
		return err
	}
	if err := report.Table1(rows).Render(os.Stdout); err != nil {
		return err
	}
	mean, lo, hi := 0.0, rows[0].ErrExact, rows[0].ErrExact
	for _, r := range rows {
		e := r.ErrExact
		mean += abs(e)
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	fmt.Printf("error range %+.1f%% .. %+.1f%%, mean |error| %.1f%%  (paper: -17%% .. +26%%, mean 12%%)\n",
		lo*100, hi*100, mean/float64(len(rows))*100)
	return nil
}

func table2(p *tech.Process, seed int64) error {
	rows, err := report.RunTable2(p, seed)
	if err != nil {
		return err
	}
	if err := report.Table2(rows).Render(os.Stdout); err != nil {
		return err
	}
	lo, hi := rows[0].Overestimate, rows[0].Overestimate
	for _, r := range rows {
		if r.Overestimate < lo {
			lo = r.Overestimate
		}
		if r.Overestimate > hi {
			hi = r.Overestimate
		}
	}
	fmt.Printf("overestimate range %+.0f%% .. %+.0f%%  (paper: +42%% .. +70%% against TimberWolf 3.2),\n"+
		"decreasing as the row count grows; the §7 sharing-extension columns show the\n"+
		"overestimate collapsing once track sharing is modelled\n",
		lo*100, hi*100)
	return nil
}

func claims() error {
	fmt.Println("claim: the central row maximizes the feed-through probability (§4.1)")
	t := &report.Table{Header: []string{"n", "D", "argmax row", "central row", "P(central)"}}
	for _, n := range []int{3, 5, 7, 9, 11} {
		for _, D := range []int{2, 4, 8} {
			row, err := prob.ArgmaxFeedThroughRow(n, D)
			if err != nil {
				return err
			}
			pc, err := prob.FeedThroughProb(n, D, prob.CentralRow(n))
			if err != nil {
				return err
			}
			t.AddRow(n, D, row, prob.CentralRow(n), pc)
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\nclaim: Eq. 9 P_feed-through -> 0.5 as n -> infinity")
	t2 := &report.Table{Header: []string{"n", "P_feedthrough(central)"}}
	for _, n := range []int{2, 5, 10, 100, 1000, 1000000} {
		pn, err := prob.CentralFeedThroughProb(n)
		if err != nil {
			return err
		}
		t2.AddRow(n, fmt.Sprintf("%.6f", pn))
	}
	if err := t2.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\nclaim: Eqs. 2-3 and 10-11 expectations match simulation")
	rng := rand.New(rand.NewSource(1988))
	t3 := &report.Table{Header: []string{"n", "D", "E(i) analytic", "E(i) simulated"}}
	for _, c := range []struct{ n, d int }{{3, 2}, {5, 3}, {8, 5}, {6, 12}} {
		analytic, err := prob.ExpectedRowSpan(c.n, c.d)
		if err != nil {
			return err
		}
		sim, err := prob.SimulateRowSpan(rng, c.n, c.d, 200000)
		if err != nil {
			return err
		}
		t3.AddRow(c.n, c.d, analytic, sim)
	}
	return t3.Render(os.Stdout)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
