package main

import "testing"

func TestRunAllTables(t *testing.T) {
	if err := run("all", "nmos25", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleTables(t *testing.T) {
	for _, tab := range []string{"1", "2", "claims"} {
		if err := run(tab, "nmos25", 1); err != nil {
			t.Fatalf("table %s: %v", tab, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("all", "nope", 1); err == nil {
		t.Error("unknown process accepted")
	}
	if err := run("7", "nmos25", 1); err == nil {
		t.Error("unknown table accepted")
	}
}
