package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maest/internal/obs"
	"maest/internal/serve"
	"maest/internal/store"
)

func demoNetlist(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", "demo.mnet"))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// populateTraces runs a traffic mix through a real serve.Server
// persisting into dir, then closes the store so offline mode can take
// single ownership.  Returns the configured server factory's traffic:
// 3 estimate hops (one a cache hit, one a 400) and 1 congestion hop.
func populateTraces(t *testing.T, dir string) {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Options{
		FlightSize: 16,
		TraceStore: st,
		Sample:     obs.SamplePolicy{Rate: 1, SlowMicros: 100_000, KeepErrors: true},
	})
	driveTraffic(t, s)
	s.FlushTraces()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func driveTraffic(t *testing.T, s *serve.Server) {
	t.Helper()
	est, err := json.Marshal(serve.EstimateRequest{Netlist: demoNetlist(t)})
	if err != nil {
		t.Fatal(err)
	}
	cong, err := json.Marshal(serve.CongestionRequest{Netlist: demoNetlist(t), Rows: 3})
	if err != nil {
		t.Fatal(err)
	}
	post := func(path string, body []byte, want int) {
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != want {
			t.Fatalf("%s: %d %s", path, w.Code, w.Body.String())
		}
	}
	post("/v1/estimate", est, http.StatusOK)
	post("/v1/estimate", est, http.StatusOK) // cache hit
	post("/v1/congestion", cong, http.StatusOK)
	post("/v1/estimate", []byte(`{"netlist":""}`), http.StatusBadRequest)
	s.SyncTraces()
}

// runOut drives the CLI and returns its stdout.
func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return buf.String()
}

func listJSON(t *testing.T, args ...string) []serve.TraceSummary {
	t.Helper()
	var rows []serve.TraceSummary
	if err := json.Unmarshal([]byte(runOut(t, args...)), &rows); err != nil {
		t.Fatalf("list output: %v", err)
	}
	return rows
}

func TestRunUsageAndUnknownCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err != errUsage {
		t.Fatalf("no args: err = %v, want errUsage", err)
	}
	if err := run([]string{"frobnicate"}, &buf); err != errUsage {
		t.Fatalf("unknown command: err = %v, want errUsage", err)
	}
}

func TestSourceValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"list"}, &buf); err == nil || !strings.Contains(err.Error(), "one of -dir or -addr") {
		t.Fatalf("no source: %v", err)
	}
	if err := run([]string{"list", "-dir", "x", "-addr", "http://y"}, &buf); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("both sources: %v", err)
	}
	// A typo'd directory reports instead of minting an empty store.
	missing := filepath.Join(t.TempDir(), "no-such-dir")
	if err := run([]string{"list", "-dir", missing}, &buf); err == nil {
		t.Fatal("nonexistent -dir did not error")
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Fatal("a failed open minted the store directory")
	}
}

func TestOfflineListFilters(t *testing.T) {
	dir := t.TempDir()
	populateTraces(t, dir)

	all := listJSON(t, "list", "-dir", dir, "-json")
	if len(all) != 4 {
		t.Fatalf("list saw %d hops, want 4", len(all))
	}
	// Newest first: the 400 was the final request.
	if all[0].Status != http.StatusBadRequest {
		t.Fatalf("newest hop is %+v, want the 400", all[0])
	}
	for _, r := range all {
		if len(r.TraceID) != 32 {
			t.Fatalf("trace id %q is not 32 hex chars", r.TraceID)
		}
	}

	est := listJSON(t, "list", "-dir", dir, "-json", "-endpoint", "/v1/estimate")
	if len(est) != 3 {
		t.Fatalf("endpoint filter saw %d hops, want 3", len(est))
	}
	if rows := listJSON(t, "list", "-dir", dir, "-json", "-min-ms", "60000"); len(rows) != 0 {
		t.Fatalf("min-ms filter leaked %d hops", len(rows))
	}
	if rows := listJSON(t, "list", "-dir", dir, "-json", "-limit", "2"); len(rows) != 2 {
		t.Fatalf("limit 2 returned %d hops", len(rows))
	}

	// Human-readable table mode.
	text := runOut(t, "list", "-dir", dir)
	if !strings.Contains(text, "TRACE") || !strings.Contains(text, "/v1/estimate") {
		t.Fatalf("table output:\n%s", text)
	}
}

func TestOfflineShow(t *testing.T) {
	dir := t.TempDir()
	populateTraces(t, dir)
	rows := listJSON(t, "list", "-dir", dir, "-json", "-endpoint", "/v1/congestion")
	if len(rows) != 1 {
		t.Fatalf("congestion hops: %+v", rows)
	}
	id := rows[0].TraceID

	var hops []*obs.FlightRecord
	if err := json.Unmarshal([]byte(runOut(t, "show", "-dir", dir, "-json", "-trace", id)), &hops); err != nil {
		t.Fatal(err)
	}
	if len(hops) != 1 || hops[0].Trace != id || hops[0].Endpoint != "/v1/congestion" {
		t.Fatalf("show -json: %+v", hops)
	}

	text := runOut(t, "show", "-dir", dir, "-trace", id)
	for _, want := range []string{"trace " + id, "hop " + hops[0].Span, "/v1/congestion"} {
		if !strings.Contains(text, want) {
			t.Fatalf("show output missing %q:\n%s", want, text)
		}
	}

	var buf bytes.Buffer
	err := run([]string{"show", "-dir", dir, "-trace", strings.Repeat("f", 32)}, &buf)
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("unknown trace: %v", err)
	}
	if err := run([]string{"show", "-dir", dir}, &buf); err == nil || !strings.Contains(err.Error(), "-trace is required") {
		t.Fatalf("missing -trace: %v", err)
	}
}

func TestOfflineSlowestAndPlans(t *testing.T) {
	dir := t.TempDir()
	populateTraces(t, dir)

	var rows []serve.TraceSummary
	if err := json.Unmarshal([]byte(runOut(t, "slowest", "-dir", dir, "-json", "-k", "2")), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("slowest -k 2 returned %d rows", len(rows))
	}
	if rows[0].Micros < rows[1].Micros {
		t.Fatalf("slowest not duration-ordered: %+v", rows)
	}

	var plans []planAgg
	if err := json.Unmarshal([]byte(runOut(t, "plans", "-dir", dir, "-json")), &plans); err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("plans aggregated nothing")
	}
	top := plans[0]
	if top.Requests < 2 || top.CacheHits < 1 {
		t.Fatalf("top plan %+v, want the twice-requested estimate plan", top)
	}
	if top.MeanUs <= 0 || top.MaxUs < int64(top.MeanUs) {
		t.Fatalf("plan latency aggregate inconsistent: %+v", top)
	}

	text := runOut(t, "plans", "-dir", dir)
	if !strings.Contains(text, "PLAN") || !strings.Contains(text, "CACHE_HITS") {
		t.Fatalf("plans table:\n%s", text)
	}
}

func TestLiveModeAgainstDebugSocket(t *testing.T) {
	st, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := serve.New(serve.Options{
		FlightSize: 16,
		TraceStore: st,
		Sample:     obs.SamplePolicy{Rate: 1, SlowMicros: 100_000, KeepErrors: true},
	})
	defer s.FlushTraces()
	driveTraffic(t, s)
	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()

	rows := listJSON(t, "list", "-addr", srv.URL, "-json")
	if len(rows) != 4 {
		t.Fatalf("live list saw %d hops, want 4", len(rows))
	}
	id := rows[0].TraceID

	var hops []*obs.FlightRecord
	if err := json.Unmarshal([]byte(runOut(t, "show", "-addr", srv.URL, "-json", "-trace", id)), &hops); err != nil {
		t.Fatal(err)
	}
	if len(hops) == 0 || hops[0].Trace != id {
		t.Fatalf("live show: %+v", hops)
	}

	if err := json.Unmarshal([]byte(runOut(t, "slowest", "-addr", srv.URL, "-json", "-k", "1")), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("live slowest: %+v", rows)
	}

	// Live plans render through the online profile view.
	text := runOut(t, "plans", "-addr", srv.URL)
	if !strings.Contains(text, "PLAN") || !strings.Contains(text, "P99_MS") {
		t.Fatalf("live plans table:\n%s", text)
	}
}

func TestLiveModeTelemetryDisabled(t *testing.T) {
	// A fully bare server: no flight ring, so no trace tier and no
	// plan profiles.
	s := serve.New(serve.Options{})
	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()
	var buf bytes.Buffer
	if err := run([]string{"list", "-addr", srv.URL}, &buf); err == nil || !strings.Contains(err.Error(), "no trace store") {
		t.Fatalf("live list without a trace store: %v", err)
	}
	if err := run([]string{"plans", "-addr", srv.URL}, &buf); err == nil || !strings.Contains(err.Error(), "telemetry disabled") {
		t.Fatalf("live plans without telemetry: %v", err)
	}
}
