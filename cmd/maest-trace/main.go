// Command maest-trace inspects persisted request traces: the tail
// sampler's keep decisions, written by maest-serve -trace-store, read
// back here as span trees, slowest-trace tables, and per-plan cost
// profiles.  It reads either a trace store directory offline (-dir) or
// a live debug socket (-addr, a maest-serve -debug-addr).
//
// Usage:
//
//	maest-trace list    [-dir DIR | -addr URL] [-endpoint EP] [-min-ms N] [-limit N] [-json]
//	maest-trace show    [-dir DIR | -addr URL] -trace TRACE_ID [-json]
//	maest-trace slowest [-dir DIR | -addr URL] [-k N] [-json]
//	maest-trace plans   [-dir DIR | -addr URL] [-json]
//
// list scans the trace index newest first; show renders one trace's
// stitched span tree (every hop, stages, and span breakdown); slowest
// ranks the persisted traces by duration; plans aggregates the traces
// into per-plan cost profiles (request counts, latency, cache and
// store hit ratios).
//
// Offline mode opens the store directory the same single-owner way
// maest-store does: run it only against a directory no server
// currently has open.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"maest/internal/client"
	"maest/internal/obs"
	"maest/internal/serve"
	"maest/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if err == errUsage {
			usage(os.Stderr)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "maest-trace:", err)
		os.Exit(1)
	}
}

var errUsage = fmt.Errorf("usage")

// run dispatches one subcommand; split from main so the tests drive
// the CLI without exec.
func run(args []string, w io.Writer) error {
	if len(args) < 1 {
		return errUsage
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		return runList(rest, w)
	case "show":
		return runShow(rest, w)
	case "slowest":
		return runSlowest(rest, w)
	case "plans":
		return runPlans(rest, w)
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
		return nil
	default:
		fmt.Fprintf(os.Stderr, "maest-trace: unknown command %q\n\n", cmd)
		return errUsage
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `maest-trace inspects persisted request traces.

Usage:

  maest-trace list    [-dir DIR | -addr URL] [-endpoint EP] [-min-ms N] [-limit N] [-json]
  maest-trace show    [-dir DIR | -addr URL] -trace TRACE_ID [-json]
  maest-trace slowest [-dir DIR | -addr URL] [-k N] [-json]
  maest-trace plans   [-dir DIR | -addr URL] [-json]

-dir reads a maest-serve -trace-store directory offline (single owner:
no server may have it open); -addr reads a live -debug-addr socket.
`)
}

// source is where the traces come from: exactly one of dir or addr.
type source struct {
	dir  string
	addr string
}

// commonFlags builds each subcommand's shared flag set.
func commonFlags(name string) (*flag.FlagSet, *source, *bool) {
	fs := flag.NewFlagSet("maest-trace "+name, flag.ExitOnError)
	src := &source{}
	fs.StringVar(&src.dir, "dir", "", "trace store directory (offline mode)")
	fs.StringVar(&src.addr, "addr", "", "live debug socket base URL, e.g. http://127.0.0.1:9090")
	asJSON := fs.Bool("json", false, "machine-readable output")
	return fs, src, asJSON
}

func (s *source) validate() error {
	switch {
	case s.dir == "" && s.addr == "":
		return fmt.Errorf("one of -dir or -addr is required")
	case s.dir != "" && s.addr != "":
		return fmt.Errorf("-dir and -addr are mutually exclusive")
	}
	return nil
}

// loadAll reads every persisted hop from a store directory, decoded.
func loadAll(dir string) ([]*obs.FlightRecord, error) {
	if _, err := os.Stat(dir); err != nil {
		// store.Open would create the directory; a typo'd -dir should
		// report, not mint an empty store.
		return nil, err
	}
	st, err := store.Open(store.Options{Dir: dir, MaxBytes: -1})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	var hops []*obs.FlightRecord
	err = st.Scan(store.NSTrace, func(_ store.Key, payload []byte) error {
		rec, err := obs.DecodeTrace(payload)
		if err != nil {
			return nil // one rotten payload loses one hop, not the scan
		}
		hops = append(hops, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(hops, func(i, j int) bool {
		if !hops[i].Time.Equal(hops[j].Time) {
			return hops[i].Time.Before(hops[j].Time)
		}
		return hops[i].Span < hops[j].Span
	})
	return hops, nil
}

func runList(args []string, w io.Writer) error {
	fs, src, asJSON := commonFlags("list")
	endpoint := fs.String("endpoint", "", "only hops of this endpoint")
	minMS := fs.Int("min-ms", 0, "only hops at least this many milliseconds long")
	limit := fs.Int("limit", 50, "show at most this many hops, newest first")
	fs.Parse(args)
	if err := src.validate(); err != nil {
		return err
	}

	var rows []serve.TraceSummary
	if src.addr != "" {
		resp, err := client.New(src.addr).DebugTraces(context.Background(), client.TraceQuery{
			Endpoint: *endpoint, MinMillis: *minMS, Limit: *limit,
		})
		if err != nil {
			return err
		}
		if !resp.Enabled {
			return fmt.Errorf("the server at %s has no trace store mounted", src.addr)
		}
		rows = resp.Traces
	} else {
		hops, err := loadAll(src.dir)
		if err != nil {
			return err
		}
		for i := len(hops) - 1; i >= 0 && len(rows) < *limit; i-- {
			h := hops[i]
			if *endpoint != "" && h.Endpoint != *endpoint {
				continue
			}
			if h.Micros < int64(*minMS)*1000 {
				continue
			}
			rows = append(rows, summarize(h))
		}
	}
	if *asJSON {
		return printJSON(w, rows)
	}
	printSummaries(w, rows)
	return nil
}

func runShow(args []string, w io.Writer) error {
	fs, src, asJSON := commonFlags("show")
	traceID := fs.String("trace", "", "trace id to render (required)")
	fs.Parse(args)
	if err := src.validate(); err != nil {
		return err
	}
	if *traceID == "" {
		return fmt.Errorf("-trace is required")
	}

	var hops []*obs.FlightRecord
	if src.addr != "" {
		resp, err := client.New(src.addr).DebugTrace(context.Background(), *traceID)
		if err != nil {
			return err
		}
		hops = resp.Hops
	} else {
		all, err := loadAll(src.dir)
		if err != nil {
			return err
		}
		for _, h := range all {
			if h.Trace == *traceID {
				hops = append(hops, h)
			}
		}
	}
	if len(hops) == 0 {
		return fmt.Errorf("trace %s not found", *traceID)
	}
	if *asJSON {
		return printJSON(w, hops)
	}
	fmt.Fprintf(w, "trace %s (%d hops)\n", *traceID, len(hops))
	for _, h := range hops {
		printHop(w, h)
	}
	return nil
}

func runSlowest(args []string, w io.Writer) error {
	fs, src, asJSON := commonFlags("slowest")
	k := fs.Int("k", 10, "show the top K hops by duration")
	fs.Parse(args)
	if err := src.validate(); err != nil {
		return err
	}

	var rows []serve.TraceSummary
	if src.addr != "" {
		// The index scan is newest-first, not duration-ordered; pull a
		// generous window and rank locally.
		resp, err := client.New(src.addr).DebugTraces(context.Background(), client.TraceQuery{Limit: 1000})
		if err != nil {
			return err
		}
		rows = resp.Traces
	} else {
		hops, err := loadAll(src.dir)
		if err != nil {
			return err
		}
		for _, h := range hops {
			rows = append(rows, summarize(h))
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Micros > rows[j].Micros })
	if *k >= 0 && *k < len(rows) {
		rows = rows[:*k]
	}
	if *asJSON {
		return printJSON(w, rows)
	}
	printSummaries(w, rows)
	return nil
}

// planAgg is one plan's offline profile, aggregated from the persisted
// traces (the live /debug/plans view aggregates online and adds
// histogram quantiles; offline, every persisted latency is available,
// so the table reports mean and max exactly).
type planAgg struct {
	Plan      string  `json:"plan"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	CacheHits int64   `json:"cache_hits"`
	StoreHits int64   `json:"store_hits"`
	MeanUs    float64 `json:"mean_us"`
	MaxUs     int64   `json:"max_us"`
}

func runPlans(args []string, w io.Writer) error {
	fs, src, asJSON := commonFlags("plans")
	fs.Parse(args)
	if err := src.validate(); err != nil {
		return err
	}

	if src.addr != "" {
		resp, err := client.New(src.addr).DebugPlans(context.Background())
		if err != nil {
			return err
		}
		if !resp.Enabled {
			return fmt.Errorf("the server at %s has request telemetry disabled", src.addr)
		}
		if *asJSON {
			return printJSON(w, resp.Plans)
		}
		fmt.Fprintf(w, "%-16s %9s %7s %10s %10s %10s %10s %9s\n",
			"PLAN", "REQUESTS", "ERRORS", "CACHE%", "STORE%", "P50_MS", "P99_MS", "DRIFT_PP")
		for _, p := range resp.Plans {
			fmt.Fprintf(w, "%-16s %9d %7d %9.1f%% %9.1f%% %10.2f %10.2f %9.3f\n",
				shortHash(p.Plan), p.Requests, p.Errors,
				p.CacheHitRatio*100, p.StoreHitRatio*100,
				p.P50Seconds*1000, p.P99Seconds*1000, p.LastDriftPP)
		}
		return nil
	}

	hops, err := loadAll(src.dir)
	if err != nil {
		return err
	}
	agg := make(map[string]*planAgg)
	for _, h := range hops {
		if h.Plan == "" {
			continue
		}
		a := agg[h.Plan]
		if a == nil {
			a = &planAgg{Plan: h.Plan}
			agg[h.Plan] = a
		}
		a.Requests++
		if h.Status >= 400 || h.Err != "" {
			a.Errors++
		}
		if h.CacheHit {
			a.CacheHits++
		}
		if h.StoreHit {
			a.StoreHits++
		}
		a.MeanUs += float64(h.Micros) // sum for now; divided below
		if h.Micros > a.MaxUs {
			a.MaxUs = h.Micros
		}
	}
	out := make([]planAgg, 0, len(agg))
	for _, a := range agg {
		a.MeanUs /= float64(a.Requests)
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		return out[i].Plan < out[j].Plan
	})
	if *asJSON {
		return printJSON(w, out)
	}
	fmt.Fprintf(w, "%-16s %9s %7s %11s %11s %10s %10s\n",
		"PLAN", "REQUESTS", "ERRORS", "CACHE_HITS", "STORE_HITS", "MEAN_MS", "MAX_MS")
	for _, a := range out {
		fmt.Fprintf(w, "%-16s %9d %7d %11d %11d %10.2f %10.2f\n",
			shortHash(a.Plan), a.Requests, a.Errors, a.CacheHits, a.StoreHits,
			a.MeanUs/1000, float64(a.MaxUs)/1000)
	}
	return nil
}

// summarize renders one hop as its index-scan row.
func summarize(h *obs.FlightRecord) serve.TraceSummary {
	return serve.TraceSummary{
		TraceID:  h.Trace,
		Endpoint: h.Endpoint,
		Status:   h.Status,
		Micros:   h.Micros,
		Time:     h.Time.UTC().Format(time.RFC3339Nano),
	}
}

func printSummaries(w io.Writer, rows []serve.TraceSummary) {
	fmt.Fprintf(w, "%-30s %-32s %-20s %6s %10s\n", "TIME", "TRACE", "ENDPOINT", "STATUS", "MS")
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s %-32s %-20s %6d %10.2f\n",
			r.Time, r.TraceID, r.Endpoint, r.Status, float64(r.Micros)/1000)
	}
}

// printHop renders one hop: the outcome line, its coarse stages, and
// the span tree indented by depth.
func printHop(w io.Writer, h *obs.FlightRecord) {
	fmt.Fprintf(w, "\nhop %s", h.Span)
	if h.ParentSpan != "" {
		fmt.Fprintf(w, " (parent %s)", h.ParentSpan)
	}
	fmt.Fprintf(w, "  %s %s -> %d in %.2f ms", h.Method, h.Endpoint, h.Status, float64(h.Micros)/1000)
	switch {
	case h.StoreHit:
		fmt.Fprint(w, "  [store hit]")
	case h.CacheHit:
		fmt.Fprint(w, "  [cache hit]")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  time %s  request %s", h.Time.UTC().Format(time.RFC3339Nano), h.ID)
	if h.Plan != "" {
		fmt.Fprintf(w, "  plan %s", shortHash(h.Plan))
	}
	fmt.Fprintln(w)
	if h.Err != "" {
		fmt.Fprintf(w, "  err: %s\n", h.Err)
	}
	for _, st := range h.Stages {
		fmt.Fprintf(w, "  stage %-12s %8.2f ms\n", st.Name, float64(st.Micros)/1000)
	}
	for _, sp := range h.Spans {
		fmt.Fprintf(w, "  %s%s %.2f ms", strings.Repeat("  ", sp.Depth), sp.Name, float64(sp.Micros)/1000)
		if sp.Err != "" {
			fmt.Fprintf(w, " (err: %s)", sp.Err)
		}
		fmt.Fprintln(w)
	}
}

// shortHash abbreviates a content address for table output.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

func printJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
