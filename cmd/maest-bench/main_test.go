package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"maest/internal/report"
)

const goldenDir = "../../testdata/golden"

func benchOptions(t *testing.T, label string) *options {
	t.Helper()
	return &options{
		label:         label,
		out:           filepath.Join(t.TempDir(), "BENCH_"+label+".json"),
		goldenDir:     goldenDir,
		proc:          "nmos25",
		seed:          1,
		requests:      12,
		estimateIters: 1,
		tolPP:         0.5,
	}
}

// TestBenchEmitsValidSnapshot runs the full harness — accuracy rerun,
// estimator timing, serve pipeline over a real socket — and validates
// the emitted BENCH_*.json has the accuracy and quantile sections the
// schema promises.
func TestBenchEmitsValidSnapshot(t *testing.T) {
	o := benchOptions(t, "test")
	var out bytes.Buffer
	regressions, err := run(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Fatalf("no -compare given but regressions returned: %v", regressions)
	}

	snap, err := report.ReadBenchSnapshot(o.out)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != report.BenchSchema || snap.Label != "test" ||
		snap.CreatedAt == "" || snap.GoVersion == "" {
		t.Fatalf("snapshot header: %+v", snap)
	}
	if len(snap.Accuracy.Modules) != 15 {
		t.Fatalf("accuracy has %d module configs, want 15", len(snap.Accuracy.Modules))
	}
	// The rerun must reproduce the goldens to print precision: this is
	// the paper-anchored baseline the comparator guards.
	if snap.Accuracy.MaxDriftPP > 0.05+1e-9 {
		t.Fatalf("max drift %.4fpp exceeds golden print precision", snap.Accuracy.MaxDriftPP)
	}
	if snap.Perf.EstimateNsPerOp <= 0 {
		t.Fatalf("estimator timing missing: %+v", snap.Perf)
	}
	if len(snap.Perf.Endpoints) != 3 {
		t.Fatalf("perf has %d endpoints, want 3: %+v", len(snap.Perf.Endpoints), snap.Perf.Endpoints)
	}
	for _, ep := range snap.Perf.Endpoints {
		if ep.Count <= 0 || ep.P50Micros <= 0 {
			t.Fatalf("endpoint %s has empty distribution: %+v", ep.Endpoint, ep)
		}
		if ep.P50Micros > ep.P90Micros || ep.P90Micros > ep.P99Micros {
			t.Fatalf("endpoint %s quantiles not monotone: %+v", ep.Endpoint, ep)
		}
	}
}

// TestBenchCompareFlagsInjectedRegression is the CI-gate acceptance
// test: against an honest reference the compare is clean, and against
// a reference doctored to claim zero drift for a module that really
// drifts (within print precision) the same run is flagged.
func TestBenchCompareFlagsInjectedRegression(t *testing.T) {
	// First run produces the reference.
	ref := benchOptions(t, "ref")
	var out bytes.Buffer
	if _, err := run(ref, &out); err != nil {
		t.Fatal(err)
	}

	// Honest compare: clean.
	again := benchOptions(t, "again")
	again.compare = ref.out
	regressions, err := run(again, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Fatalf("self-compare regressed: %v", regressions)
	}

	// Inject a regression: rewrite the reference so fc-rslatch_xtor
	// claims zero drift, then compare with a tolerance below the
	// module's real (rounding-level) drift of ~0.026pp.
	snap, err := report.ReadBenchSnapshot(ref.out)
	if err != nil {
		t.Fatal(err)
	}
	var doctored bool
	for i, m := range snap.Accuracy.Modules {
		if m.Module == "fc-rslatch_xtor" && m.Config == "exact" {
			snap.Accuracy.Modules[i].DriftPP = 0
			doctored = true
		}
	}
	if !doctored {
		t.Fatal("fc-rslatch_xtor/exact not present in reference")
	}
	doctoredPath := filepath.Join(t.TempDir(), "BENCH_doctored.json")
	if err := report.WriteBenchSnapshot(doctoredPath, snap); err != nil {
		t.Fatal(err)
	}

	flagged := benchOptions(t, "flagged")
	flagged.compare = doctoredPath
	flagged.tolPP = 0.01
	regressions, err = run(flagged, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 1 || !strings.Contains(regressions[0], "fc-rslatch_xtor/exact") {
		t.Fatalf("injected regression not flagged: %v", regressions)
	}
}

// TestBenchCompareAgainstCheckedInReference pins the CI smoke: a
// fresh run must stay within tolerance of the repository's reference
// snapshot (regenerate it with `go run ./cmd/maest-bench -label
// reference -o testdata/bench/BENCH_reference.json` after intentional
// model changes).
func TestBenchCompareAgainstCheckedInReference(t *testing.T) {
	o := benchOptions(t, "ci")
	o.compare = filepath.Join("..", "..", "testdata", "bench", "BENCH_reference.json")
	var out bytes.Buffer
	regressions, err := run(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(regressions) != 0 {
		t.Fatalf("regressions vs checked-in reference: %v", regressions)
	}
}

// TestBenchStoreMode runs the -store benchmark and validates the
// store block: every replayed request in the warm pass is answered
// without a store miss, and the cold/warm timings are real.
func TestBenchStoreMode(t *testing.T) {
	o := benchOptions(t, "store")
	o.store = true
	var out bytes.Buffer
	if _, err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	snap, err := report.ReadBenchSnapshot(o.out)
	if err != nil {
		t.Fatal(err)
	}
	st := snap.Store
	if st == nil {
		t.Fatal("snapshot has no store block with -store set")
	}
	if st.Requests != o.requests || st.Modules <= 0 {
		t.Fatalf("store block shape: %+v", st)
	}
	if st.ColdFirstHitUs <= 0 || st.WarmFirstHitUs <= 0 || st.WarmSpeedup <= 0 {
		t.Fatalf("store timings missing: %+v", st)
	}
	if st.StoreMisses != 0 {
		t.Fatalf("warm replay missed the store %d times: %+v", st.StoreMisses, st)
	}
	// Each distinct module hits the store exactly once in the warm
	// pass; repeats land in the rehydrated LRU.
	want := st.Modules
	if o.requests < want {
		want = o.requests
	}
	if st.StoreHits != int64(want) {
		t.Fatalf("store hits %d, want %d: %+v", st.StoreHits, want, st)
	}
	if !strings.Contains(out.String(), "store cold first-hit") {
		t.Fatalf("run output missing the store line:\n%s", out.String())
	}
}
