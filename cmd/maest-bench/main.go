// Command maest-bench is the continuous accuracy/perf observatory: it
// reruns the paper's Table 1 and Table 2 experiments against the
// checked-in goldens, times the estimator over the generated suites,
// drives the serving pipeline end-to-end over a real socket, and
// emits everything as a schema-versioned BENCH_<label>.json snapshot.
//
// Usage:
//
//	maest-bench [-label local] [-o BENCH_local.json]
//	            [-golden testdata/golden] [-proc nmos25] [-seed 1]
//	            [-requests 60] [-estimate-iters 3] [-store] [-telemetry]
//	            [-floorplan 6]
//	            [-compare ref.json] [-tol 0.5] [-perf-tol 0]
//
// With -compare the fresh snapshot is diffed against a reference:
// accuracy drift beyond -tol percentage points (or a vanished module)
// exits 2, so CI can gate on it.  Perf comparison is machine-
// dependent and therefore opt-in: it only runs when -perf-tol is
// positive (0.25 allows +25% on estimator ns/op and endpoint p99).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"

	"maest/internal/client"
	"maest/internal/engine"
	"maest/internal/engine/distmemo"
	"maest/internal/floorplan"
	"maest/internal/gen"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/report"
	"maest/internal/serve"
	"maest/internal/store"
	"maest/internal/tech"
)

type options struct {
	label         string
	out           string
	goldenDir     string
	proc          string
	seed          int64
	requests      int
	estimateIters int
	compare       string
	tolPP         float64
	perfTol       float64
	ecoEdits      int
	ecoMinSpeedup float64
	store         bool
	telemetry     bool
	floorplanMods int
}

func main() {
	var o options
	flag.StringVar(&o.label, "label", "local", "snapshot label (written into the file and its default name)")
	flag.StringVar(&o.out, "o", "", "output path (default BENCH_<label>.json)")
	flag.StringVar(&o.goldenDir, "golden", "testdata/golden", "directory holding the golden table1.txt/table2.txt")
	flag.StringVar(&o.proc, "proc", "nmos25", "builtin process to benchmark")
	flag.Int64Var(&o.seed, "seed", 1, "layout-synthesis seed (must match the goldens')")
	flag.IntVar(&o.requests, "requests", 60, "serve-pipeline requests to fire for the latency quantiles")
	flag.IntVar(&o.estimateIters, "estimate-iters", 3, "full-suite estimation passes to time")
	flag.StringVar(&o.compare, "compare", "", "reference BENCH_*.json to diff against; regressions exit 2")
	flag.Float64Var(&o.tolPP, "tol", 0.5, "allowed accuracy drift growth vs the reference, percentage points")
	flag.Float64Var(&o.perfTol, "perf-tol", 0, "allowed perf growth vs the reference as a fraction (0 disables perf compare)")
	flag.IntVar(&o.ecoEdits, "eco", 0, "ECO edits per module for the incremental-reestimation benchmark (0 disables it)")
	flag.Float64Var(&o.ecoMinSpeedup, "eco-min-speedup", 0, "minimum delta-vs-recompile speedup the -eco benchmark must reach; below it exits 2 (0 disables the gate)")
	flag.BoolVar(&o.store, "store", false, "benchmark the persistent store: cold vs warm time-to-first-hit and the hit ratio over a replayed request log")
	flag.BoolVar(&o.telemetry, "telemetry", false, "benchmark request-telemetry overhead: sampling-on vs sampling-off ns/req, and pin the disabled path at 0 allocs")
	flag.IntVar(&o.floorplanMods, "floorplan", 0, "benchmark the Plan-driven annealer over a generated chip with this many modules (0 disables it)")
	flag.Parse()

	regressions, err := run(&o, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maest-bench:", err)
		os.Exit(1)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		os.Exit(2)
	}
}

// run builds the snapshot, writes it, and (with -compare) diffs it
// against the reference, returning the regression messages.
func run(o *options, w io.Writer) ([]string, error) {
	p, err := tech.Lookup(o.proc)
	if err != nil {
		return nil, err
	}
	if o.out == "" {
		o.out = "BENCH_" + o.label + ".json"
	}

	snap := &report.BenchSnapshot{
		Schema:    report.BenchSchema,
		Label:     o.label,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}

	fmt.Fprintf(w, "maest-bench: accuracy vs %s goldens (seed %d)\n", o.goldenDir, o.seed)
	snap.Accuracy, err = report.BuildAccuracy(o.goldenDir, p, o.seed)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "maest-bench: %d module configs, max drift %.3fpp\n",
		len(snap.Accuracy.Modules), snap.Accuracy.MaxDriftPP)

	snap.Perf.EstimateNsPerOp, snap.Perf.EstimateOps, err = timeEstimator(p, o.estimateIters)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "maest-bench: estimator %d ns/op over %d full-suite passes\n",
		snap.Perf.EstimateNsPerOp, snap.Perf.EstimateOps)

	snap.Perf.Endpoints, err = timeServePipeline(o.requests)
	if err != nil {
		return nil, err
	}
	for _, ep := range snap.Perf.Endpoints {
		fmt.Fprintf(w, "maest-bench: %-18s n=%-3d p50=%.0fus p90=%.0fus p99=%.0fus\n",
			ep.Endpoint, ep.Count, ep.P50Micros, ep.P90Micros, ep.P99Micros)
	}

	if o.ecoEdits > 0 {
		snap.Eco, err = timeEco(p, o.ecoEdits)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "maest-bench: eco %d modules x %d edits: full %d ns/edit, delta %d ns/edit, %.1fx\n",
			snap.Eco.Modules, snap.Eco.Edits, snap.Eco.FullNsPerEdit, snap.Eco.DeltaNsPerEdit, snap.Eco.Speedup)
		if snap.Eco.HashMismatches > 0 {
			return nil, fmt.Errorf("eco: %d edit steps diverged from the recompile route", snap.Eco.HashMismatches)
		}
	}

	if o.store {
		snap.Store, err = timeStore(o.requests)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "maest-bench: store cold first-hit %.0fus, warm %.0fus (%.1fx), hit ratio %.2f over %d requests\n",
			snap.Store.ColdFirstHitUs, snap.Store.WarmFirstHitUs, snap.Store.WarmSpeedup,
			snap.Store.HitRatio, snap.Store.Requests)
		if snap.Store.StoreMisses > 0 {
			return nil, fmt.Errorf("store: %d misses replaying a log the cold pass fully persisted", snap.Store.StoreMisses)
		}
	}

	if o.floorplanMods > 0 {
		snap.Floorplan, err = timeFloorplan(p, o.floorplanMods, o.seed)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "maest-bench: floorplan %d modules, %d ns/move over %d moves; cost %.4g -> %.4g (%.1f%% gain), memo hit ratio %.2f\n",
			snap.Floorplan.Modules, snap.Floorplan.NsPerMove, snap.Floorplan.Budget,
			snap.Floorplan.GreedyCost, snap.Floorplan.AnnealCost,
			snap.Floorplan.CostGainPct*100, snap.Floorplan.MemoHitRatio)
		if snap.Floorplan.AnnealCost > snap.Floorplan.GreedyCost {
			return nil, fmt.Errorf("floorplan: anneal cost %g regressed past greedy %g",
				snap.Floorplan.AnnealCost, snap.Floorplan.GreedyCost)
		}
	}

	if o.telemetry {
		snap.Telemetry, err = timeTelemetry(o.requests)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "maest-bench: telemetry bare %d ns/req, sampled %d ns/req (%+.1f%%); disabled path %.0f allocs/op; kept %d/%d traces, %d store bytes\n",
			snap.Telemetry.BareNsPerReq, snap.Telemetry.SampledNsPerReq, snap.Telemetry.OverheadPct*100,
			snap.Telemetry.DisabledPathAllocs, snap.Telemetry.TracesKept, snap.Telemetry.TracesSeen,
			snap.Telemetry.StoreBytes)
		if snap.Telemetry.DisabledPathAllocs != 0 {
			return nil, fmt.Errorf("telemetry: sampling-disabled path allocates (%.0f allocs/op, want 0)",
				snap.Telemetry.DisabledPathAllocs)
		}
	}

	// Runtime conditions the perf numbers were taken under: heap and GC
	// state are the usual explanation when ns/op moves between hosts.
	rs := obs.ReadRuntimeSummary()
	snap.Runtime = &report.RuntimeSnapshot{
		Goroutines:        rs.Goroutines,
		HeapBytes:         rs.HeapBytes,
		GCCycles:          rs.GCCycles,
		GCPauseP50Seconds: rs.GCPauseP50Seconds,
		GCPauseP99Seconds: rs.GCPauseP99Seconds,
		SchedLatP99Secs:   rs.SchedLatP99Secs,
	}

	if err := report.WriteBenchSnapshot(o.out, snap); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "maest-bench: wrote %s\n", o.out)

	regressions := checkEcoGate(o, snap)
	if o.compare == "" {
		return regressions, nil
	}
	ref, err := report.ReadBenchSnapshot(o.compare)
	if err != nil {
		return nil, fmt.Errorf("reference: %w", err)
	}
	regressions = append(regressions, report.CompareBench(ref, snap, o.tolPP, o.perfTol)...)
	if len(regressions) == 0 {
		fmt.Fprintf(w, "maest-bench: no regressions vs %s (tol %.2fpp)\n", o.compare, o.tolPP)
	}
	return regressions, nil
}

// timeFloorplan benchmarks the Plan-driven annealer: compile a
// generated chip's modules once, run the greedy (budget 0) baseline
// and an annealed pass with the congestion-scored cost, and report
// move throughput, the cost recovered, and the routability memo's hit
// ratio.
func timeFloorplan(p *tech.Process, modules int, seed int64) (*report.FloorplanSnapshot, error) {
	chip, err := gen.RandomChip(gen.ChipConfig{
		Name: "bench-floorplan", Modules: modules, MinGates: 20, MaxGates: 80, Seed: seed,
	}, p)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	mods := make([]floorplan.PlanModule, len(chip.Modules))
	for i, c := range chip.Modules {
		pl, err := engine.CompileCtx(ctx, c, p)
		if err != nil {
			return nil, err
		}
		mods[i] = floorplan.PlanModule{Name: c.Name, Plan: pl}
	}
	nets := make([]floorplan.Net, len(chip.GlobalNets))
	for i, gn := range chip.GlobalNets {
		pins := make([]floorplan.NetPin, len(gn.Pins))
		for j, pin := range gn.Pins {
			pins[j] = floorplan.NetPin{Module: pin.Module, Port: pin.Port}
		}
		nets[i] = floorplan.Net{Name: gn.Name, Pins: pins}
	}
	opts := []floorplan.Option{
		floorplan.WithSeed(seed),
		floorplan.WithCongestWeight(1),
		floorplan.WithWireWeight(0.5),
	}
	greedy, err := floorplan.PlanModules(ctx, chip.Name, mods, nets,
		append(opts, floorplan.WithBudget(-1))...)
	if err != nil {
		return nil, err
	}
	budget := floorplan.DefaultBudget
	t0 := time.Now()
	annealed, err := floorplan.PlanModules(ctx, chip.Name, mods, nets,
		append(opts, floorplan.WithBudget(budget))...)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(t0)
	fp := &report.FloorplanSnapshot{
		Modules:      modules,
		Budget:       annealed.Stats.Iterations,
		Seed:         seed,
		NsPerMove:    elapsed.Nanoseconds() / int64(max(annealed.Stats.Iterations, 1)),
		GreedyCost:   greedy.Cost,
		AnnealCost:   annealed.Cost,
		RoutLookups:  annealed.Stats.RoutLookups,
		RoutMemoHits: annealed.Stats.RoutMemoHits,
	}
	if greedy.Cost > 0 {
		fp.CostGainPct = (greedy.Cost - annealed.Cost) / greedy.Cost
	}
	if annealed.Stats.RoutLookups > 0 {
		fp.MemoHitRatio = float64(annealed.Stats.RoutMemoHits) / float64(annealed.Stats.RoutLookups)
	}
	return fp, nil
}

// checkEcoGate applies the -eco-min-speedup floor to a snapshot.
func checkEcoGate(o *options, snap *report.BenchSnapshot) []string {
	if o.ecoMinSpeedup <= 0 || snap.Eco == nil {
		return nil
	}
	if snap.Eco.Speedup < o.ecoMinSpeedup {
		return []string{fmt.Sprintf(
			"eco: delta route is only %.1fx faster than recompiling; the gate requires %.1fx",
			snap.Eco.Speedup, o.ecoMinSpeedup)}
	}
	return nil
}

// timeEstimator measures one "op" = estimating every module of both
// generated suites (Full-Custom exact+average, Standard-Cell at the
// paper's row counts), without the layout-synthesis ground truth.
func timeEstimator(p *tech.Process, iters int) (int64, int, error) {
	if iters < 1 {
		iters = 1
	}
	fc, err := gen.FullCustomSuite(p)
	if err != nil {
		return 0, 0, err
	}
	sc, err := gen.StandardCellSuite(p)
	if err != nil {
		return 0, 0, err
	}
	// Each iteration compiles fresh plans so the op keeps measuring the
	// full pipeline (statistics gathering + kernels), not memo lookups;
	// within an iteration the plan is reused the way real callers do.
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < iters; i++ {
		for _, c := range fc {
			pl, err := engine.Compile(c, p)
			if err != nil {
				return 0, 0, err
			}
			if _, err := pl.EstimateFullCustom(ctx, engine.WithFCMode(engine.FCExactAreas)); err != nil {
				return 0, 0, err
			}
			if _, err := pl.EstimateFullCustom(ctx, engine.WithFCMode(engine.FCAverageAreas)); err != nil {
				return 0, 0, err
			}
		}
		for j, c := range sc {
			pl, err := engine.Compile(c, p)
			if err != nil {
				return 0, 0, err
			}
			for _, n := range report.Table2RowCounts[j] {
				if _, err := pl.EstimateStandardCell(ctx, engine.WithRows(n)); err != nil {
					return 0, 0, err
				}
			}
		}
	}
	return time.Since(start).Nanoseconds() / int64(iters), iters, nil
}

// timeEco measures the ECO loop both ways.  One edit step is a pin
// toggle (connect, then disconnect, a hot net) applied to a generated
// standard-cell module, followed by the re-estimate an interactive
// floorplanner asks for: the Eq. 12 standard-cell estimate plus the
// Eq. 2–11 congestion analysis — the convolution-heavy path the
// incremental machinery exists for.  (The full-custom transistor
// expansion is deliberately not part of the op: it is identical
// O(N) work on both routes, independent of how the plan was derived,
// so it only dilutes the measurement; the differential harness covers
// its bit-identity separately.)  The from-scratch route pays what a
// pre-delta caller paid — apply the edit, recompile, estimate, with
// the distribution memo purged so nothing carries over between
// "independent" estimates — and the delta route chains Plan.Delta
// children off a warm memo the way an incremental caller does.  Every
// step cross-checks the two routes' plan content addresses; a
// mismatch is a correctness failure.
func timeEco(p *tech.Process, edits int) (*report.EcoSnapshot, error) {
	ctx := context.Background()
	var circs []*netlist.Circuit
	for i, gates := range []int{96, 160, 240} {
		c, err := gen.RandomCircuit(gen.RandomConfig{
			Name: fmt.Sprintf("eco%d", i), Gates: gates, Inputs: 5, Outputs: 4, Seed: int64(21 + i),
		}, p)
		if err != nil {
			return nil, err
		}
		circs = append(circs, c)
	}
	editFor := func(c *netlist.Circuit, step int) engine.Edit {
		dev := c.Devices[step/2%2].Name
		if step%2 == 0 {
			return engine.ConnectPin(dev, "eco_hot")
		}
		return engine.DisconnectPin(dev, "eco_hot")
	}

	// From-scratch route, cold memo per step.
	var fullNs int64
	hashes := make([][]engine.Hash, len(circs))
	for m, c := range circs {
		cur := c
		for s := 0; s < edits; s++ {
			distmemo.Purge()
			t0 := time.Now()
			next, err := engine.ApplyEdits(cur, editFor(c, s))
			if err != nil {
				return nil, err
			}
			pl, err := engine.Compile(next, p)
			if err != nil {
				return nil, err
			}
			if _, err := pl.EstimateStandardCell(ctx); err != nil {
				return nil, err
			}
			if _, err := pl.Congestion(ctx); err != nil {
				return nil, err
			}
			fullNs += time.Since(t0).Nanoseconds()
			cur = next
			hashes[m] = append(hashes[m], pl.Hash())
		}
	}

	// Delta route, chained children, warm memo.
	var deltaNs int64
	mismatches := 0
	for m, c := range circs {
		pl, err := engine.Compile(c, p)
		if err != nil {
			return nil, err
		}
		if _, err := pl.EstimateStandardCell(ctx); err != nil {
			return nil, err
		}
		if _, err := pl.Congestion(ctx); err != nil {
			return nil, err
		}
		for s := 0; s < edits; s++ {
			t0 := time.Now()
			child, err := pl.Delta(editFor(c, s))
			if err != nil {
				return nil, err
			}
			if _, err := child.EstimateStandardCell(ctx); err != nil {
				return nil, err
			}
			if _, err := child.Congestion(ctx); err != nil {
				return nil, err
			}
			deltaNs += time.Since(t0).Nanoseconds()
			if child.Hash() != hashes[m][s] {
				mismatches++
			}
			pl = child
		}
	}

	n := int64(len(circs) * edits)
	snap := &report.EcoSnapshot{
		Modules:        len(circs),
		Edits:          edits,
		FullNsPerEdit:  fullNs / n,
		DeltaNsPerEdit: deltaNs / n,
		HashMismatches: mismatches,
	}
	if deltaNs > 0 {
		snap.Speedup = float64(fullNs) / float64(deltaNs)
	}
	return snap, nil
}

// timeServePipeline boots the real HTTP service on a loopback socket,
// fires n requests across the three endpoints through the Go client
// (so the measured path includes traceparent injection, exactly what
// production callers pay), and reads the latency quantiles back from
// the per-endpoint histograms.
func timeServePipeline(n int) ([]report.EndpointPerf, error) {
	if n < 3 {
		n = 3
	}
	handler := serve.New(serve.Options{FlightSize: 64})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()
	c := client.New("http://" + ln.Addr().String())

	single := serve.EstimateRequest{Netlist: chainNetlist("bench-single", 24)}
	batch := serve.BatchRequest{Modules: []serve.ModuleInput{
		{Netlist: chainNetlist("bench-b0", 8)},
		{Netlist: chainNetlist("bench-b1", 12)},
	}}
	congest := serve.CongestionRequest{Netlist: chainNetlist("bench-cg", 16), Rows: 3}

	// One root trace context for the whole run: every benchmark request
	// hangs off it, so a -trace capture shows the suite as one tree.
	ctx := obs.WithTraceContext(context.Background(), obs.NewTraceContext())
	calls := []func() error{
		func() error { _, err := c.Estimate(ctx, single); return err },
		func() error { _, err := c.EstimateBatch(ctx, batch); return err },
		func() error { _, err := c.Congestion(ctx, congest); return err },
	}
	for i := 0; i < n; i++ {
		if err := calls[i%len(calls)](); err != nil {
			return nil, err
		}
	}

	var out []report.EndpointPerf
	for _, ep := range serve.LatencySummary() {
		if ep.Count == 0 {
			continue
		}
		out = append(out, report.EndpointPerf{
			Endpoint:  ep.Endpoint,
			Count:     ep.Count,
			MeanUs:    ep.MeanSecs * 1e6,
			P50Micros: ep.P50Seconds * 1e6,
			P90Micros: ep.P90Seconds * 1e6,
			P99Micros: ep.P99Seconds * 1e6,
		})
	}
	if len(out) == 0 {
		return nil, errors.New("serve pipeline produced no latency samples")
	}
	return out, nil
}

// timeStore measures the persistent store's serving value: the same
// request log replayed against the real HTTP service twice over one
// store directory.  Pass one starts cold (empty store — every answer
// is computed and persisted write-behind); the service is then torn
// down, which flushes and seals the store, and booted fresh against
// the populated directory, so pass two's first request times the
// disk-hit path an operator sees after a restart.
func timeStore(n int) (*report.StoreSnapshot, error) {
	if n < 4 {
		n = 4
	}
	dir, err := os.MkdirTemp("", "maest-bench-store-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// The replay log round-robins a handful of distinct modules, so
	// the log revisits each one several times the way a floorplanner
	// iterating on a chip does.
	var reqs []serve.EstimateRequest
	for i := 0; i < 8; i++ {
		reqs = append(reqs, serve.EstimateRequest{
			Netlist: chainNetlist(fmt.Sprintf("bench-store-%d", i), 8+6*i),
		})
	}
	ctx := obs.WithTraceContext(context.Background(), obs.NewTraceContext())

	replay := func() (firstHit time.Duration, stats store.Stats, err error) {
		st, err := store.Open(store.Options{Dir: dir})
		if err != nil {
			return 0, store.Stats{}, err
		}
		handler := serve.New(serve.Options{Store: st})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			st.Close()
			return 0, store.Stats{}, err
		}
		srv := &http.Server{Handler: handler}
		go srv.Serve(ln)
		defer func() {
			srv.Close()
			handler.FlushStore()
			if cerr := st.Close(); err == nil {
				err = cerr
			}
		}()
		c := client.New("http://" + ln.Addr().String())
		t0 := time.Now()
		if _, err := c.Estimate(ctx, reqs[0]); err != nil {
			return 0, store.Stats{}, err
		}
		firstHit = time.Since(t0)
		for i := 1; i < n; i++ {
			if _, err := c.Estimate(ctx, reqs[i%len(reqs)]); err != nil {
				return 0, store.Stats{}, err
			}
		}
		return firstHit, st.Stats(), nil
	}

	coldFirst, _, err := replay()
	if err != nil {
		return nil, err
	}
	warmFirst, stats, err := replay()
	if err != nil {
		return nil, err
	}

	snap := &report.StoreSnapshot{
		Requests:       n,
		Modules:        len(reqs),
		ColdFirstHitUs: float64(coldFirst.Nanoseconds()) / 1e3,
		WarmFirstHitUs: float64(warmFirst.Nanoseconds()) / 1e3,
		StoreHits:      stats.Hits,
		StoreMisses:    stats.Misses,
		HitRatio:       float64(stats.Hits) / float64(n),
	}
	if warmFirst > 0 {
		snap.WarmSpeedup = float64(coldFirst) / float64(warmFirst)
	}
	return snap, nil
}

// timeTelemetry measures what request telemetry costs: the same
// request log replayed twice over loopback, once against a bare
// service (no flight ring, no trace store — the zero-telemetry
// configuration) and once with tail sampling at rate 1.0 persisting
// every trace write-behind.  It also pins the contract the hot path
// depends on: with sampling disabled, the per-request telemetry calls
// (TailSampler.Keep on a nil sampler, Histogram.Observe) must not
// allocate at all.
func timeTelemetry(n int) (*report.TelemetrySnapshot, error) {
	if n < 4 {
		n = 4
	}
	var reqs []serve.EstimateRequest
	for i := 0; i < 6; i++ {
		reqs = append(reqs, serve.EstimateRequest{
			Netlist: chainNetlist(fmt.Sprintf("bench-tel-%d", i), 8+6*i),
		})
	}
	ctx := obs.WithTraceContext(context.Background(), obs.NewTraceContext())

	replay := func(handler *serve.Server) (perReq time.Duration, err error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		srv := &http.Server{Handler: handler}
		go srv.Serve(ln)
		defer srv.Close()
		c := client.New("http://" + ln.Addr().String())
		// Warm once so neither pass pays first-request setup.
		if _, err := c.Estimate(ctx, reqs[0]); err != nil {
			return 0, err
		}
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if _, err := c.Estimate(ctx, reqs[i%len(reqs)]); err != nil {
				return 0, err
			}
		}
		return time.Since(t0) / time.Duration(n), nil
	}

	bare, err := replay(serve.New(serve.Options{}))
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "maest-bench-trace-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		return nil, err
	}
	sampled := serve.New(serve.Options{
		FlightSize: 64,
		TraceStore: st,
		Sample:     obs.SamplePolicy{Rate: 1.0, SlowMicros: 100_000, KeepErrors: true},
	})
	perReq, err := replay(sampled)
	if err != nil {
		st.Close()
		return nil, err
	}
	sampled.FlushTraces()
	sstats := sampled.Sampler().Stats()
	stStats := st.Stats()
	if err := st.Close(); err != nil {
		return nil, err
	}

	// The disabled path: a nil sampler and an unregistered histogram,
	// exactly what a request pays when telemetry is off.
	var nilSampler *obs.TailSampler
	h := obs.NewHistogram(obs.DefBuckets)
	var tid [16]byte
	allocs := testing.AllocsPerRun(1000, func() {
		nilSampler.Keep(tid, 1234, false)
		h.Observe(0.001)
	})

	snap := &report.TelemetrySnapshot{
		Requests:           n,
		BareNsPerReq:       bare.Nanoseconds(),
		SampledNsPerReq:    perReq.Nanoseconds(),
		DisabledPathAllocs: allocs,
		TracesSeen:         sstats.Seen,
		TracesKept:         sstats.Kept,
		TracesDropped:      sstats.Dropped,
		StoreBytes:         stStats.Bytes,
		StoreRecords:       stStats.Records,
	}
	if bare > 0 {
		snap.OverheadPct = float64(perReq-bare) / float64(bare)
	}
	return snap, nil
}

// chainNetlist emits a deterministic inverter chain in mnet format.
func chainNetlist(name string, stages int) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "module %s\nport in a\n", name)
	prev := "a"
	for i := 0; i < stages; i++ {
		next := fmt.Sprintf("n%d", i)
		fmt.Fprintf(&b, "device g%d INV %s %s\n", i, prev, next)
		prev = next
	}
	fmt.Fprintf(&b, "port out %s\nend\n", prev)
	return b.String()
}
