package main

import "testing"

func TestRunKinds(t *testing.T) {
	cases := []struct {
		kind, format string
	}{
		{"rand", "mnet"}, {"rand", "bench"},
		{"chain", "mnet"}, {"chain", "bench"},
		{"pla", "mnet"},
		{"suite-fc", "mnet"},
		{"suite-sc", "mnet"}, {"suite-sc", "bench"},
	}
	for _, c := range cases {
		if err := run(c.kind, "nmos25", 20, 4, 3, 6, 1, c.format); err != nil {
			t.Errorf("%s/%s: %v", c.kind, c.format, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("rand", "nope", 10, 4, 3, 6, 1, "mnet"); err == nil {
		t.Error("unknown process accepted")
	}
	if err := run("rand", "nmos25", 10, 4, 3, 6, 1, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run("wombat", "nmos25", 10, 4, 3, 6, 1, "mnet"); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run("pla", "nmos25", 10, 4, 3, 6, 1, "bench"); err == nil {
		t.Error("pla as bench accepted")
	}
	if err := run("suite-fc", "nmos25", 10, 4, 3, 6, 1, "bench"); err == nil {
		t.Error("fc suite as bench accepted")
	}
	if err := run("rand", "nmos25", 0, 4, 3, 6, 1, "mnet"); err == nil {
		t.Error("zero gates accepted")
	}
}
