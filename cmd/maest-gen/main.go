// Command maest-gen emits benchmark workloads in the estimator's
// input formats: random mapped logic, inverter chains, the paper's
// benchmark-suite modules, and PLA netlists, as .mnet or .bench text
// on stdout.
//
// Usage:
//
//	maest-gen -kind rand -gates 120 -seed 7            # random logic (.mnet)
//	maest-gen -kind rand -format bench                 # same as .bench
//	maest-gen -kind chain -gates 32                    # inverter chain
//	maest-gen -kind pla -inputs 6 -outputs 4 -terms 12 # nMOS PLA (.mnet)
//	maest-gen -kind suite-fc                           # Table 1 suite, one module per file prefix
package main

import (
	"flag"
	"fmt"
	"os"

	"maest"
	"maest/internal/tech"
)

func main() {
	var (
		kind     = flag.String("kind", "rand", "workload: rand, chain, pla, suite-fc, suite-sc")
		procFlag = flag.String("proc", "nmos25", "builtin process name")
		gates    = flag.Int("gates", 60, "gate count for rand/chain")
		inputs   = flag.Int("inputs", 6, "input count (rand, pla)")
		outputs  = flag.Int("outputs", 4, "output count (rand, pla)")
		terms    = flag.Int("terms", 12, "product terms (pla)")
		seed     = flag.Int64("seed", 1, "generator seed")
		format   = flag.String("format", "mnet", "output format: mnet or bench")
	)
	flag.Parse()
	if err := run(*kind, *procFlag, *gates, *inputs, *outputs, *terms, *seed, *format); err != nil {
		fmt.Fprintln(os.Stderr, "maest-gen:", err)
		os.Exit(1)
	}
}

func run(kind, procName string, gates, inputs, outputs, terms int, seed int64, format string) error {
	p, err := tech.Lookup(procName)
	if err != nil {
		return err
	}
	if format != "mnet" && format != "bench" {
		return fmt.Errorf("unknown format %q (want mnet or bench)", format)
	}
	emit := func(c *maest.Circuit) error {
		if format == "bench" {
			return maest.WriteBench(os.Stdout, c)
		}
		return maest.WriteMnet(os.Stdout, c)
	}
	switch kind {
	case "rand":
		// The mapper can introduce reserved "$" names when it
		// decomposes wide gates; regenerate through .bench text when
		// .mnet output is requested so names are clean.
		c, err := maest.RandomCircuit(maest.RandomConfig{
			Name: "rand", Gates: gates, Inputs: inputs, Outputs: outputs, Seed: seed,
		}, p)
		if err != nil {
			return err
		}
		if format == "mnet" {
			c, err = renameClean(c, p)
			if err != nil {
				return err
			}
		}
		return emit(c)
	case "chain":
		c, err := maest.Chain("chain", gates, p)
		if err != nil {
			return err
		}
		return emit(c)
	case "pla":
		if format == "bench" {
			return fmt.Errorf("PLA netlists are transistor-level; .bench cannot express them")
		}
		q, err := maest.RandomPLA(inputs, outputs, terms, 0.45, seed)
		if err != nil {
			return err
		}
		c, err := q.Circuit("pla", p)
		if err != nil {
			return err
		}
		return emit(c)
	case "suite-fc":
		if format == "bench" {
			return fmt.Errorf("the Full-Custom suite is transistor-level; .bench cannot express it")
		}
		suite, err := maest.FullCustomSuite(p)
		if err != nil {
			return err
		}
		for _, c := range suite {
			clean, err := renameClean(c, p)
			if err != nil {
				return err
			}
			if err := emit(clean); err != nil {
				return err
			}
		}
		return nil
	case "suite-sc":
		suite, err := maest.StandardCellSuite(p)
		if err != nil {
			return err
		}
		for _, c := range suite {
			out := c
			if format == "mnet" {
				if out, err = renameClean(c, p); err != nil {
					return err
				}
			}
			if err := emit(out); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
}

// renameClean rebuilds a circuit with sequentially numbered device
// and net names, erasing reserved "$" names so the result is valid
// .mnet source.
func renameClean(c *maest.Circuit, p *maest.Process) (*maest.Circuit, error) {
	b := maest.NewCircuitBuilder(c.Name)
	netName := map[string]string{}
	nameOf := func(orig string) string {
		if n, ok := netName[orig]; ok {
			return n
		}
		n := fmt.Sprintf("n%d", len(netName))
		netName[orig] = n
		return n
	}
	// Ports keep their names (interface stability); their nets adopt
	// the port name.
	for _, port := range c.Ports {
		netName[port.Net.Name] = port.Name
	}
	for i, d := range c.Devices {
		pins := make([]string, len(d.Pins))
		for j, n := range d.Pins {
			if n != nil {
				pins[j] = nameOf(n.Name)
			}
		}
		b.AddDevice(fmt.Sprintf("u%d", i), d.Type, pins...)
	}
	for _, port := range c.Ports {
		b.AddPort(port.Name, port.Dir, nameOf(port.Net.Name))
	}
	return b.Build()
}
