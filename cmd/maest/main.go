// Command maest is the module area estimator CLI — the Fig. 1
// pipeline: a circuit schematic (.mnet or .bench) plus a fabrication
// process database in, module area and aspect-ratio estimates out,
// optionally as a floor-planner database record.
//
// Usage:
//
//	maest [-proc nmos25|cmos30|@file] [-rows N] [-sharing] [-db] circuit.mnet
//	maest -bench -name c17 circuit.bench
//
// With no positional argument the circuit is read from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"maest"
)

func main() {
	var (
		procFlag = flag.String("proc", "nmos25", "process: builtin name or @file to load a process database")
		rows     = flag.Int("rows", 0, "fix the standard-cell row count (0 = automatic §5 selection)")
		sharing  = flag.Bool("sharing", false, "enable the §7 routing-track-sharing extension")
		bench    = flag.Bool("bench", false, "input is ISCAS-style .bench instead of .mnet")
		verilog  = flag.Bool("verilog", false, "input is structural gate-level Verilog instead of .mnet")
		name     = flag.String("name", "module", "module name for .bench inputs")
		asDB     = flag.Bool("db", false, "emit a floor-planner database record instead of text")
		stats    = flag.Bool("stats", false, "also print interconnect-complexity statistics")
	)
	flag.Parse()
	if err := run(*procFlag, *rows, *sharing, *bench, *verilog, *name, *asDB, *stats, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "maest:", err)
		os.Exit(1)
	}
}

func run(procFlag string, rows int, sharing, bench, verilog bool, name string, asDB, stats bool, args []string) error {
	proc, err := loadProcess(procFlag)
	if err != nil {
		return err
	}
	in, closer, err := openInput(args)
	if err != nil {
		return err
	}
	defer closer()

	var circ *maest.Circuit
	switch {
	case bench && verilog:
		return fmt.Errorf("-bench and -verilog are mutually exclusive")
	case bench:
		circ, err = maest.ParseBench(in, name, proc)
	case verilog:
		circ, err = maest.ParseVerilog(in, proc)
	default:
		circ, err = maest.ParseMnet(in)
	}
	if err != nil {
		return err
	}
	res, err := maest.Estimate(circ, proc, maest.SCOptions{Rows: rows, TrackSharing: sharing})
	if err != nil {
		return err
	}
	if asDB {
		d := &maest.EstimateDB{Chip: res.Module, Modules: []maest.ModuleRecord{maest.ModuleRecordFromResult(res)}}
		return maest.WriteEstimateDB(os.Stdout, d)
	}
	printResult(res, proc)
	if stats {
		printStats(circ)
	}
	return nil
}

func printStats(circ *maest.Circuit) {
	deg := maest.CircuitDegrees(circ)
	fmt.Printf("interconnect: %d routable nets, mean degree %.2f, max degree %d, %d pins\n",
		deg.RoutableNets, deg.MeanDegree, deg.MaxDegree, deg.TotalPins)
	if rent, err := maest.RentExponent(circ); err == nil {
		fmt.Printf("Rent's rule: P = %.2f·B^%.2f  (log-log R² %.2f)\n",
			rent.Coefficient, rent.Exponent, rent.R2)
	}
}

func loadProcess(spec string) (*maest.Process, error) {
	if file, ok := strings.CutPrefix(spec, "@"); ok {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return maest.ReadProcess(f)
	}
	return maest.LookupProcess(spec)
}

func openInput(args []string) (io.Reader, func(), error) {
	switch len(args) {
	case 0:
		return os.Stdin, func() {}, nil
	case 1:
		f, err := os.Open(args[0])
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	default:
		return nil, nil, fmt.Errorf("expected at most one input file, got %d", len(args))
	}
}

func printResult(res *maest.Result, proc *maest.Process) {
	fmt.Printf("module %s  (process %s, λ = %.2f µm)\n",
		res.Module, proc.Name, float64(proc.LambdaNM)/1000)
	fmt.Printf("  devices %d   routable nets %d   ports %d\n",
		res.Stats.N, res.Stats.H, res.Stats.NumPorts)
	if res.SC != nil {
		sc := res.SC
		fmt.Printf("standard-cell (rows=%d, tracks=%d, feed-throughs=%d):\n",
			sc.Rows, sc.Tracks, sc.FeedThroughs)
		fmt.Printf("  %.0f × %.0f λ = %.0f λ²   aspect %.2f\n",
			sc.Width, sc.Height, sc.Area, sc.AspectRatio)
		if len(res.SCCandidates) > 0 {
			fmt.Println("  candidate shapes:")
			for _, c := range res.SCCandidates {
				fmt.Printf("    rows=%d  %.0f × %.0f λ  (%.0f λ², aspect %.2f)\n",
					c.Rows, c.Width, c.Height, c.Area, c.AspectRatio)
			}
		}
	}
	for _, fc := range []*maest.FCEstimate{res.FCExact, res.FCAverage} {
		if fc == nil {
			continue
		}
		fmt.Printf("full-custom (%s device areas):\n", fc.Mode)
		fmt.Printf("  device %.0f + wire %.0f = %.0f λ²   %.0f × %.0f λ   aspect %.2f\n",
			fc.DeviceArea, fc.WireArea, fc.Area, fc.Width, fc.Height, fc.AspectRatio)
	}
}
