// Command maest is the module area estimator CLI — the Fig. 1
// pipeline: a circuit schematic (.mnet or .bench) plus a fabrication
// process database in, module area and aspect-ratio estimates out,
// optionally as a floor-planner database record.
//
// Usage:
//
//	maest [-proc nmos25|cmos30|@file] [-rows N] [-sharing] [-db] circuit.mnet
//	maest -bench -name c17 circuit.bench
//	maest -congest [-model occupancy|crossing] [-grid] circuit.mnet
//	maest -trace out.jsonl -metrics -pprof out.cpu circuit.mnet
//
// With no positional argument the circuit is read from stdin.
//
// -congest renders the module's congestion map (per-channel demand
// vs. capacity, overflow probabilities, feed-through pressure, ranked
// hotspots) instead of the area estimate; combined with -db it
// attaches the map's summary to the database record.  -grid selects
// the gridded full-custom variant.
//
// The observability flags: -trace streams a JSONL span trace to the
// file ("-" = stdout) and prints the span summary tree to stderr;
// -metrics dumps the Prometheus-style metrics to stderr; -pprof
// writes a CPU profile to the file and a heap snapshot to FILE.heap.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"maest"
	"maest/internal/obs"
)

// options carries the parsed flag values into run.
type options struct {
	proc    string
	rows    int
	sharing bool
	bench   bool
	verilog bool
	name    string
	asDB    bool
	stats   bool
	congest bool
	model   string
	grid    bool
	trace   string
	metrics bool
	pprof   string
}

func main() {
	var o options
	flag.StringVar(&o.proc, "proc", "nmos25", "process: builtin name or @file to load a process database")
	flag.IntVar(&o.rows, "rows", 0, "fix the standard-cell row count (0 = automatic §5 selection)")
	flag.BoolVar(&o.sharing, "sharing", false, "enable the §7 routing-track-sharing extension")
	flag.BoolVar(&o.bench, "bench", false, "input is ISCAS-style .bench instead of .mnet")
	flag.BoolVar(&o.verilog, "verilog", false, "input is structural gate-level Verilog instead of .mnet")
	flag.StringVar(&o.name, "name", "module", "module name for .bench inputs")
	flag.BoolVar(&o.asDB, "db", false, "emit a floor-planner database record instead of text")
	flag.BoolVar(&o.stats, "stats", false, "also print interconnect-complexity statistics")
	flag.BoolVar(&o.congest, "congest", false, "render the congestion map instead of the area estimate (with -db: attach its summary to the record)")
	flag.StringVar(&o.model, "model", "", "congestion demand model: occupancy (default) or crossing")
	flag.BoolVar(&o.grid, "grid", false, "analyze congestion on the gridded full-custom model (-rows fixes the grid rows, 0 = ⌈√N⌉)")
	flag.StringVar(&o.trace, "trace", "", "write a JSONL span trace to this file ('-' = stdout) and a summary tree to stderr")
	flag.BoolVar(&o.metrics, "metrics", false, "dump pipeline metrics (Prometheus text format) to stderr on exit")
	flag.StringVar(&o.pprof, "pprof", "", "write a CPU profile to this file (and a heap snapshot to FILE.heap)")
	flag.Parse()
	if err := run(o, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "maest:", err)
		os.Exit(1)
	}
}

func run(o options, args []string) (err error) {
	cli, ctx, err := obs.SetupCLI(context.Background(), o.trace, o.metrics, o.pprof)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := cli.Close(os.Stderr); err == nil {
			err = cerr
		}
	}()

	proc, err := loadProcess(o.proc)
	if err != nil {
		return err
	}
	in, closer, err := openInput(args)
	if err != nil {
		return err
	}
	defer closer()

	var circ *maest.Circuit
	switch {
	case o.bench && o.verilog:
		return fmt.Errorf("-bench and -verilog are mutually exclusive")
	case o.bench:
		circ, err = maest.ParseBenchCtx(ctx, in, o.name, proc)
	case o.verilog:
		circ, err = maest.ParseVerilogCtx(ctx, in, proc)
	default:
		circ, err = maest.ParseMnetCtx(ctx, in)
	}
	if err != nil {
		return err
	}
	// One compile serves every question asked about the circuit: the
	// -congest -db combination runs both a congestion analysis and the
	// full estimate against the same plan, sharing the gathered
	// statistics and degree classes.
	pl, err := maest.CompileCtx(ctx, circ, proc)
	if err != nil {
		return err
	}
	var cm *maest.CongestMap
	if o.congest {
		if cm, err = analyzeCongestion(ctx, o, pl); err != nil {
			return err
		}
		if !o.asDB {
			return cm.Render(os.Stdout)
		}
	}
	res, err := pl.Estimate(ctx, maest.WithRows(o.rows), maest.WithTrackSharing(o.sharing))
	if err != nil {
		return err
	}
	if o.asDB {
		rec := maest.ModuleRecordFromResult(res)
		if cm != nil {
			rec.Congestion = cm.DBSummary()
		}
		d := &maest.EstimateDB{Chip: res.Module, Modules: []maest.ModuleRecord{rec}}
		return maest.WriteEstimateDB(os.Stdout, d)
	}
	printResult(res, proc)
	if o.stats {
		printStats(circ)
	}
	return nil
}

// analyzeCongestion runs the -congest analysis against the compiled
// plan: the standard-cell map at the fixed or §5-automatic row count,
// or the gridded full-custom variant under -grid.
func analyzeCongestion(ctx context.Context, o options, pl *maest.Plan) (*maest.CongestMap, error) {
	model, err := maest.ParseCongestModel(o.model)
	if err != nil {
		return nil, err
	}
	return pl.Congestion(ctx,
		maest.WithRows(o.rows), maest.WithGridded(o.grid), maest.WithCongestModel(model))
}

func printStats(circ *maest.Circuit) {
	deg := maest.CircuitDegrees(circ)
	fmt.Printf("interconnect: %d routable nets, mean degree %.2f, max degree %d, %d pins\n",
		deg.RoutableNets, deg.MeanDegree, deg.MaxDegree, deg.TotalPins)
	if rent, err := maest.RentExponent(circ); err == nil {
		fmt.Printf("Rent's rule: P = %.2f·B^%.2f  (log-log R² %.2f)\n",
			rent.Coefficient, rent.Exponent, rent.R2)
	}
}

func loadProcess(spec string) (*maest.Process, error) {
	if file, ok := strings.CutPrefix(spec, "@"); ok {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return maest.ReadProcess(f)
	}
	return maest.LookupProcess(spec)
}

func openInput(args []string) (io.Reader, func(), error) {
	switch len(args) {
	case 0:
		return os.Stdin, func() {}, nil
	case 1:
		f, err := os.Open(args[0])
		if err != nil {
			return nil, nil, err
		}
		return f, func() { f.Close() }, nil
	default:
		return nil, nil, fmt.Errorf("expected at most one input file, got %d", len(args))
	}
}

func printResult(res *maest.Result, proc *maest.Process) {
	fmt.Printf("module %s  (process %s, λ = %.2f µm)\n",
		res.Module, proc.Name, float64(proc.LambdaNM)/1000)
	fmt.Printf("  devices %d   routable nets %d   ports %d\n",
		res.Stats.N, res.Stats.H, res.Stats.NumPorts)
	if res.SC != nil {
		sc := res.SC
		fmt.Printf("standard-cell (rows=%d, tracks=%d, feed-throughs=%d):\n",
			sc.Rows, sc.Tracks, sc.FeedThroughs)
		fmt.Printf("  %.0f × %.0f λ = %.0f λ²   aspect %.2f\n",
			sc.Width, sc.Height, sc.Area, sc.AspectRatio)
		if len(res.SCCandidates) > 0 {
			fmt.Println("  candidate shapes:")
			for _, c := range res.SCCandidates {
				fmt.Printf("    rows=%d  %.0f × %.0f λ  (%.0f λ², aspect %.2f)\n",
					c.Rows, c.Width, c.Height, c.Area, c.AspectRatio)
			}
		}
	}
	for _, fc := range []*maest.FCEstimate{res.FCExact, res.FCAverage} {
		if fc == nil {
			continue
		}
		fmt.Printf("full-custom (%s device areas):\n", fc.Mode)
		fmt.Printf("  device %.0f + wire %.0f = %.0f λ²   %.0f × %.0f λ   aspect %.2f\n",
			fc.DeviceArea, fc.WireArea, fc.Area, fc.Width, fc.Height, fc.AspectRatio)
	}
}
