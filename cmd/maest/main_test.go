package main

import (
	"os"
	"path/filepath"
	"testing"

	"maest"
)

const repoTestdata = "../../testdata"

func TestRunMnet(t *testing.T) {
	if err := run("nmos25", 2, false, false, false, "module", false, false,
		[]string{filepath.Join(repoTestdata, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBenchWithStatsAndSharing(t *testing.T) {
	if err := run("cmos30", 0, true, true, false, "c17", false, true,
		[]string{filepath.Join(repoTestdata, "c17.bench")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDBOutput(t *testing.T) {
	if err := run("nmos25", 0, false, false, false, "module", true, false,
		[]string{filepath.Join(repoTestdata, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunProcessFile(t *testing.T) {
	dir := t.TempDir()
	procFile := filepath.Join(dir, "p.proc")
	f, err := os.Create(procFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := maest.WriteProcess(f, maest.NMOS25()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("@"+procFile, 2, false, false, false, "module", false, false,
		[]string{filepath.Join(repoTestdata, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerilogInput(t *testing.T) {
	if err := run("nmos25", 2, false, false, true, "module", false, false,
		[]string{filepath.Join(repoTestdata, "fa.v")}); err != nil {
		t.Fatal(err)
	}
	// Mutually exclusive flags.
	if err := run("nmos25", 2, false, true, true, "module", false, false,
		[]string{filepath.Join(repoTestdata, "fa.v")}); err == nil {
		t.Fatal("-bench -verilog combination accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("unobtainium", 0, false, false, false, "m", false, false, nil); err == nil {
		t.Error("unknown process accepted")
	}
	if err := run("@/does/not/exist", 0, false, false, false, "m", false, false, nil); err == nil {
		t.Error("missing process file accepted")
	}
	if err := run("nmos25", 0, false, false, false, "m", false, false,
		[]string{"/does/not/exist.mnet"}); err == nil {
		t.Error("missing input accepted")
	}
	if err := run("nmos25", 0, false, false, false, "m", false, false,
		[]string{"a", "b"}); err == nil {
		t.Error("two inputs accepted")
	}
	// Malformed input.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.mnet")
	if err := os.WriteFile(bad, []byte("not a module"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("nmos25", 0, false, false, false, "m", false, false, []string{bad}); err == nil {
		t.Error("malformed input accepted")
	}
	if err := run("nmos25", 0, false, true, false, "m", false, false, []string{bad}); err == nil {
		t.Error("malformed bench accepted")
	}
}
