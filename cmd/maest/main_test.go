package main

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"maest"
)

const repoTestdata = "../../testdata"

func TestRunMnet(t *testing.T) {
	if err := run(options{proc: "nmos25", rows: 2, name: "module"},
		[]string{filepath.Join(repoTestdata, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBenchWithStatsAndSharing(t *testing.T) {
	if err := run(options{proc: "cmos30", sharing: true, bench: true, name: "c17", stats: true},
		[]string{filepath.Join(repoTestdata, "c17.bench")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDBOutput(t *testing.T) {
	if err := run(options{proc: "nmos25", name: "module", asDB: true},
		[]string{filepath.Join(repoTestdata, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCongest(t *testing.T) {
	demo := filepath.Join(repoTestdata, "demo.mnet")
	for _, o := range []options{
		{proc: "nmos25", name: "module", congest: true},
		{proc: "nmos25", name: "module", congest: true, rows: 3, model: "crossing"},
		{proc: "nmos25", name: "module", congest: true, grid: true},
	} {
		if err := run(o, []string{demo}); err != nil {
			t.Errorf("%+v: %v", o, err)
		}
	}
	if err := run(options{proc: "nmos25", name: "module", congest: true, model: "psychic"},
		[]string{demo}); err == nil {
		t.Error("unknown congestion model accepted")
	}
}

// -congest -db attaches the map summary to the database record, and
// the emitted record must parse back with it intact.
func TestRunCongestDB(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run(options{proc: "nmos25", name: "module", congest: true, asDB: true, rows: 3, model: "crossing"},
			[]string{filepath.Join(repoTestdata, "demo.mnet")}); err != nil {
			t.Fatal(err)
		}
	})
	d, err := maest.ReadEstimateDB(strings.NewReader(out))
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out)
	}
	c := d.Modules[0].Congestion
	if c == nil {
		t.Fatalf("record carries no congestion summary:\n%s", out)
	}
	if c.Model != "crossing" || c.Rows != 3 {
		t.Fatalf("summary = %+v", c)
	}
}

func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRunProcessFile(t *testing.T) {
	dir := t.TempDir()
	procFile := filepath.Join(dir, "p.proc")
	f, err := os.Create(procFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := maest.WriteProcess(f, maest.NMOS25()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(options{proc: "@" + procFile, rows: 2, name: "module"},
		[]string{filepath.Join(repoTestdata, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerilogInput(t *testing.T) {
	if err := run(options{proc: "nmos25", rows: 2, verilog: true, name: "module"},
		[]string{filepath.Join(repoTestdata, "fa.v")}); err != nil {
		t.Fatal(err)
	}
	// Mutually exclusive flags.
	if err := run(options{proc: "nmos25", rows: 2, bench: true, verilog: true, name: "module"},
		[]string{filepath.Join(repoTestdata, "fa.v")}); err == nil {
		t.Fatal("-bench -verilog combination accepted")
	}
}

// TestRunObservability is the acceptance flow: a traced, metered,
// profiled run must leave a JSONL span trace covering parse →
// estimate plus the pprof artifacts.
func TestRunObservability(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	prof := filepath.Join(dir, "cpu.pprof")
	if err := run(options{proc: "nmos25", name: "module", trace: trace, metrics: true, pprof: prof},
		[]string{filepath.Join(repoTestdata, "demo.mnet")}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid trace line %q: %v", sc.Text(), err)
		}
		spans[m["span"].(string)] = true
	}
	for _, want := range []string{"parse.mnet", "estimate", "estimate.sc", "estimate.fc"} {
		if !spans[want] {
			t.Errorf("trace missing span %q (got %v)", want, spans)
		}
	}
	for _, p := range []string{prof, prof + ".heap"} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err %v)", p, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	base := options{proc: "nmos25", name: "m"}
	if err := run(options{proc: "unobtainium", name: "m"}, nil); err == nil {
		t.Error("unknown process accepted")
	}
	if err := run(options{proc: "@/does/not/exist", name: "m"}, nil); err == nil {
		t.Error("missing process file accepted")
	}
	if err := run(base, []string{"/does/not/exist.mnet"}); err == nil {
		t.Error("missing input accepted")
	}
	if err := run(base, []string{"a", "b"}); err == nil {
		t.Error("two inputs accepted")
	}
	// Malformed input.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.mnet")
	if err := os.WriteFile(bad, []byte("not a module"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(base, []string{bad}); err == nil {
		t.Error("malformed input accepted")
	}
	badBench := base
	badBench.bench = true
	if err := run(badBench, []string{bad}); err == nil {
		t.Error("malformed bench accepted")
	}
	// An unwritable trace path fails up front.
	badTrace := base
	badTrace.trace = filepath.Join(dir, "no", "such", "dir", "t.jsonl")
	if err := run(badTrace, []string{filepath.Join(repoTestdata, "demo.mnet")}); err == nil {
		t.Error("unwritable trace path accepted")
	}
}
