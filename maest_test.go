package maest_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"maest"
)

const demoMnet = `
module demo
port in a
port in b
port out y
device g1 NAND2 a b n1
device g2 INV n1 n2
device g3 NOR2 n1 b n3
device g4 NAND2 n2 n3 y
end
`

func TestPublicPipeline(t *testing.T) {
	p := maest.NMOS25()
	res, err := maest.Pipeline(strings.NewReader(demoMnet), p, maest.SCOptions{Rows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SC == nil || res.FCExact == nil || res.FCAverage == nil {
		t.Fatal("missing estimates")
	}
	if res.SC.Area <= 0 || res.FCExact.Area <= 0 {
		t.Fatal("degenerate estimates")
	}
}

func TestPublicBuilderFlow(t *testing.T) {
	p := maest.CMOS30()
	b := maest.NewCircuitBuilder("pub")
	b.AddDevice("g1", "NAND2", "a", "b", "y")
	b.AddDevice("g2", "INV", "y", "z")
	b.AddPort("a", maest.In, "a")
	b.AddPort("b", maest.In, "b")
	b.AddPort("z", maest.Out, "z")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := maest.GatherStats(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 2 || s.NumPorts != 3 {
		t.Fatalf("stats = %+v", s)
	}
	sc, err := maest.EstimateStandardCell(s, p, maest.SCOptions{Rows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Area <= 0 {
		t.Fatal("empty estimate")
	}
	x, err := maest.ExpandTransistors(c, p)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := maest.EstimateFullCustom(x, p, maest.FCExactAreas)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Area <= 0 {
		t.Fatal("empty FC estimate")
	}
}

func TestPublicGroundTruthFlow(t *testing.T) {
	p := maest.NMOS25()
	c, err := maest.RandomCircuit(maest.RandomConfig{Gates: 30, Inputs: 4, Outputs: 3, Seed: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := maest.LayoutStandardCell(c, p, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Area() <= 0 {
		t.Fatal("empty layout")
	}
	pl, err := maest.PlaceCircuit(c, p, maest.PlaceOptions{Rows: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := maest.RoutePlacement(pl, maest.RouteOptions{TrackSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	if rr.TotalTracks <= 0 {
		t.Fatal("no routing")
	}
}

func TestPublicFloorplanFlow(t *testing.T) {
	p := maest.NMOS25()
	chip, err := maest.RandomChip(maest.ChipConfig{Modules: 3, MinGates: 10, MaxGates: 20, Seed: 2}, p)
	if err != nil {
		t.Fatal(err)
	}
	d := &maest.EstimateDB{Chip: chip.Name}
	for _, mod := range chip.Modules {
		res, err := maest.Estimate(mod, p, maest.SCOptions{})
		if err != nil {
			t.Fatal(err)
		}
		d.Modules = append(d.Modules, maest.ModuleRecordFromResult(res))
	}
	for _, gn := range chip.GlobalNets {
		rec := maest.GlobalNet{Name: gn.Name}
		for _, pin := range gn.Pins {
			rec.Pins = append(rec.Pins, maest.GlobalPin{Module: pin.Module, Port: pin.Port})
		}
		d.Nets = append(d.Nets, rec)
	}
	var buf bytes.Buffer
	if err := maest.WriteEstimateDB(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := maest.ReadEstimateDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := maest.PlanChip(back)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Area() <= 0 || len(plan.Blocks) != 3 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestPublicProbability(t *testing.T) {
	e, err := maest.ExpectedRowSpan(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-5.0/3) > 1e-12 {
		t.Fatalf("E = %g", e)
	}
	pft, err := maest.CentralFeedThroughProb(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pft-2.0/9) > 1e-12 {
		t.Fatalf("p = %g", pft)
	}
	if _, err := maest.FeedThroughProb(5, 3, 3); err != nil {
		t.Fatal(err)
	}
}

func TestPublicProcessRoundTrip(t *testing.T) {
	p, err := maest.LookupProcess("nmos25")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := maest.WriteProcess(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := maest.ReadProcess(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "nmos25" {
		t.Fatalf("name = %q", back.Name)
	}
}

func TestPublicSuitesAndBaselines(t *testing.T) {
	p := maest.NMOS25()
	fc, err := maest.FullCustomSuite(p)
	if err != nil || len(fc) != 5 {
		t.Fatalf("FC suite: %v %d", err, len(fc))
	}
	sc, err := maest.StandardCellSuite(p)
	if err != nil || len(sc) != 2 {
		t.Fatalf("SC suite: %v %d", err, len(sc))
	}
	s, err := maest.GatherStats(sc[0], p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := maest.NaiveEstimate(s, 2); err != nil {
		t.Fatal(err)
	}
	model, err := maest.CalibratePLEST(sc[:1], p, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if model.Density <= 0 {
		t.Fatal("bad PLEST calibration")
	}
	if _, err := maest.SynthesizeFullCustom(fc[0], p, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicExtendedSurface(t *testing.T) {
	p := maest.NMOS25()
	c, err := maest.RandomCircuit(maest.RandomConfig{Gates: 40, Inputs: 5, Outputs: 4, Seed: 3}, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := maest.GatherStats(c, p)
	if err != nil {
		t.Fatal(err)
	}
	// Profiled estimator and feed-through profile.
	if _, err := maest.EstimateStandardCellProfiled(s, p, maest.SCOptions{Rows: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := maest.FeedThroughRowProfile(s, 3); err != nil {
		t.Fatal(err)
	}
	// Variance surface.
	if _, err := maest.RowSpanVariance(4, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := maest.TrackInterval(3, s.DegreeCount, 2); err != nil {
		t.Fatal(err)
	}
	// Parallel chip estimation.
	res, err := maest.EstimateChip([]*maest.Circuit{c}, p, maest.SCOptions{}, 2)
	if err != nil || len(res) != 1 {
		t.Fatalf("EstimateChip: %v", err)
	}
	// Geometry + DRC + SVG + CIF.
	pl, err := maest.PlaceCircuit(c, p, maest.PlaceOptions{Rows: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	det, err := maest.DetailRoutePlacement(pl)
	if err != nil {
		t.Fatal(err)
	}
	g, err := maest.BuildGeometry(pl, det, p)
	if err != nil {
		t.Fatal(err)
	}
	if vs := maest.CheckDRC(g, p); len(vs) != 0 {
		t.Fatalf("DRC violations on engine output: %v", vs[0])
	}
	var buf bytes.Buffer
	if err := maest.WriteSVG(&buf, g, 2); err != nil {
		t.Fatal(err)
	}
	// Partitioning and Rent.
	if _, err := maest.Bipartition(c, nil, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := maest.RentExponentFM(c, 1); err != nil {
		t.Fatal(err)
	}
	// Rescaled process conversions.
	q, err := p.Rescale("shrunk", 1250)
	if err != nil {
		t.Fatal(err)
	}
	if q.PhysicalArea(100) >= p.PhysicalArea(100) {
		t.Fatal("shrink did not reduce physical area")
	}
	// HDL surfaces: Verilog + bench writers.
	var v, bb bytes.Buffer
	if err := maest.WriteVerilog(&v, c); err != nil {
		t.Fatal(err)
	}
	back, err := maest.ParseVerilog(&v, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := maest.WriteBench(&bb, back); err != nil {
		t.Fatal(err)
	}
	// Chain generator.
	if _, err := maest.Chain("c", 5, p); err != nil {
		t.Fatal(err)
	}
	// Plan SVG + global route on a tiny chip.
	chip, err := maest.RandomChip(maest.ChipConfig{Modules: 2, MinGates: 8, MaxGates: 12, Seed: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	d := &maest.EstimateDB{Chip: chip.Name}
	for _, m := range chip.Modules {
		r, err := maest.Estimate(m, p, maest.SCOptions{})
		if err != nil {
			t.Fatal(err)
		}
		d.Modules = append(d.Modules, maest.ModuleRecordFromResult(r))
	}
	for _, gn := range chip.GlobalNets {
		rec := maest.GlobalNet{Name: gn.Name}
		for _, pin := range gn.Pins {
			rec.Pins = append(rec.Pins, maest.GlobalPin{Module: pin.Module, Port: pin.Port})
		}
		d.Nets = append(d.Nets, rec)
	}
	plan, err := maest.PlanChip(d)
	if err != nil {
		t.Fatal(err)
	}
	var psvg bytes.Buffer
	if err := maest.WritePlanSVG(&psvg, plan, 1); err != nil {
		t.Fatal(err)
	}
	if len(d.Nets) > 0 {
		if _, err := maest.GlobalRoute(d, plan, p, 4); err != nil {
			t.Fatal(err)
		}
	}
	// PLA surface.
	q2, err := maest.RandomPLA(3, 2, 5, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.Circuit("pla", p); err != nil {
		t.Fatal(err)
	}
	// Degree metrics.
	if deg := maest.CircuitDegrees(c); deg.RoutableNets == 0 {
		t.Fatal("no degrees")
	}
}

func TestPublicSimAndPlanOpt(t *testing.T) {
	b := maest.NewCircuitBuilder("s")
	b.AddDevice("g1", "XOR2", "a", "b", "y")
	b.AddPort("a", maest.In, "a")
	b.AddPort("b", maest.In, "b")
	b.AddPort("y", maest.Out, "y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := maest.EvalCircuit(c, map[string]bool{"a": true, "b": false})
	if err != nil {
		t.Fatal(err)
	}
	if !vals["y"] {
		t.Fatal("XOR(1,0) != 1")
	}
	d := &maest.EstimateDB{Chip: "x", Modules: []maest.ModuleRecord{
		{Name: "m", Devices: 1, Nets: 1, Ports: 1,
			Shapes: []maest.ShapeRecord{{Label: "s", W: 10, H: 10}}},
	}}
	if _, err := maest.PlanChipOpt(d, maest.PlanOptions{WireWeight: 1}); err != nil {
		t.Fatal(err)
	}
}
