// full adder, structural Verilog-1985 style
module fa (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire axb, t1, t2;
  xor  x1 (axb, a, b);
  xor  x2 (sum, axb, cin);
  nand n1 (t1, a, b);
  nand n2 (t2, cin, axb);
  nand n3 (cout, t1, t2);
endmodule
