package maest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFacadeCoversInternalExports pins the re-export layer against
// drift: every exported top-level symbol of the estimator packages
// (internal/core, internal/congest, internal/engine) must be
// referenced from maest.go — as an alias target, a shim body, or a
// re-exported constant — or be listed here as intentionally internal.
// Adding an export to those packages without deciding its public
// story fails this test.
func TestFacadeCoversInternalExports(t *testing.T) {
	// Symbols deliberately not part of the public facade.  Each entry
	// should say why.
	allowed := map[string]string{
		// The engine re-exports the core FC modes for its internal
		// consumers; the facade already exposes them from core.
		"engine.FCExactAreas":   "duplicate of core.FCExactAreas",
		"engine.FCAverageAreas": "duplicate of core.FCAverageAreas",
	}

	facade := referencedSelectors(t, "maest.go")
	for _, pkg := range []string{"core", "congest", "engine"} {
		for _, sym := range exportedSymbols(t, filepath.Join("internal", pkg)) {
			key := pkg + "." + sym
			if _, ok := allowed[key]; ok {
				continue
			}
			if !facade[key] {
				t.Errorf("%s is exported but not referenced in maest.go; re-export it or allowlist it with a reason", key)
			}
		}
	}
	for key := range allowed {
		if facade[key] {
			t.Errorf("%s is allowlisted as internal but maest.go references it; drop the allowlist entry", key)
		}
	}
}

// exportedSymbols parses every non-test file of an internal package
// and returns its exported package-level identifiers.
func exportedSymbols(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var out []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.IsExported() {
					out = append(out, d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							out = append(out, s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, id := range s.Names {
							if id.IsExported() {
								out = append(out, id.Name)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// referencedSelectors returns every pkg.Symbol selector mentioned in
// the facade file, keyed "pkg.Symbol".
func referencedSelectors(t *testing.T, file string) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, file, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	refs := make(map[string]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			refs[id.Name+"."+sel.Sel.Name] = true
		}
		return true
	})
	return refs
}
