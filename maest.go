// Package maest is a module area estimator for VLSI layout: a Go
// reproduction of Chen & Bushnell, "A Module Area Estimator for VLSI
// Layout", 25th Design Automation Conference (DAC), 1988.
//
// The estimator predicts, before any layout exists, the area and
// aspect ratio of a circuit module under two layout methodologies:
//
//   - Standard-Cell: equal-height cells in rows separated by routing
//     channels; the estimator computes the expected number of routing
//     tracks from the probability that a net's pins scatter over the
//     rows, and the expected number of feed-throughs in the central
//     row (paper §4.1, Eqs. 1–12).
//   - Full-Custom: free transistor placement; per-net interconnect is
//     lower-bounded by a two-row/one-track-channel model (paper §4.2,
//     Eq. 13), run with exact or average device areas.
//
// The package also ships everything needed to evaluate the estimator
// the way the paper does: a structural netlist language, process
// databases (nMOS λ=2.5µm and a generic CMOS), a simulated-annealing
// placer plus channel router producing real layouts (the TimberWolf
// stand-in), a Full-Custom layout synthesizer (the manual-layout
// stand-in), a slicing floor planner consuming the estimate database,
// baseline estimators, and workload generators.
//
// Quick start:
//
//	proc := maest.NMOS25()
//	circ, err := maest.ParseMnet(file)
//	res, err := maest.Estimate(circ, proc, maest.SCOptions{})
//	fmt.Println(res.SC.Area, res.FCExact.Area)
package maest

import (
	"context"
	"io"

	"maest/internal/baseline"
	"maest/internal/cells"
	"maest/internal/congest"
	"maest/internal/core"
	"maest/internal/db"
	"maest/internal/engine"
	"maest/internal/floorplan"
	"maest/internal/gen"
	"maest/internal/geom"
	"maest/internal/hdl"
	"maest/internal/layout"
	"maest/internal/metrics"
	"maest/internal/netlist"
	"maest/internal/obs"
	"maest/internal/pla"
	"maest/internal/place"
	"maest/internal/prob"
	"maest/internal/route"
	"maest/internal/serve"
	"maest/internal/sim"
	"maest/internal/tech"
)

// Geometry units (Mead–Conway λ grid).
type (
	// Lambda is a length in λ.
	Lambda = geom.Lambda
	// Area is a surface in λ².
	Area = geom.Area
)

// Technology database.
type (
	// Process is a fabrication-process database entry.
	Process = tech.Process
	// Device is one fabricable device type.
	Device = tech.Device
)

// NMOS25 returns the built-in nMOS λ=2.5µm process (the paper's
// evaluation technology).
func NMOS25() *Process { return tech.NMOS25() }

// CMOS30 returns the built-in generic CMOS process.
func CMOS30() *Process { return tech.CMOS30() }

// LookupProcess returns a built-in process by name ("nmos25",
// "cmos30").
func LookupProcess(name string) (*Process, error) { return tech.Lookup(name) }

// ReadProcess parses exactly one process from its text serialization.
func ReadProcess(r io.Reader) (*Process, error) { return tech.ReadOne(r) }

// WriteProcess serializes a process.
func WriteProcess(w io.Writer, p *Process) error { return tech.Write(w, p) }

// Circuit model.
type (
	// Circuit is a flat module netlist.
	Circuit = netlist.Circuit
	// CircuitBuilder assembles circuits programmatically.
	CircuitBuilder = netlist.Builder
	// Stats are the §4 estimator inputs gathered from a circuit.
	Stats = netlist.Stats
	// PortDir is an external port direction.
	PortDir = netlist.PortDir
)

// Port directions.
const (
	In    = netlist.In
	Out   = netlist.Out
	InOut = netlist.InOut
)

// NewCircuitBuilder starts a circuit with the given module name.
func NewCircuitBuilder(name string) *CircuitBuilder { return netlist.NewBuilder(name) }

// GatherStats scans a circuit against a process and returns the
// estimator inputs (N, H, Wᵢ, Xᵢ, yᵢ, ports).
func GatherStats(c *Circuit, p *Process) (*Stats, error) { return netlist.Gather(c, p) }

// HDL front end.

// ParseMnet parses a module in the .mnet structural netlist language.
func ParseMnet(r io.Reader) (*Circuit, error) { return hdl.ParseMnet(r) }

// WriteMnet serializes a circuit in .mnet form.
func WriteMnet(w io.Writer, c *Circuit) error { return hdl.WriteMnet(w, c) }

// ParseBench parses an ISCAS-style .bench gate-level file, mapping
// its gates onto the process cell library.
func ParseBench(r io.Reader, name string, p *Process) (*Circuit, error) {
	return hdl.ParseBench(r, name, p)
}

// ParseVerilog parses a structural gate-level Verilog subset
// (Verilog-1985 primitives), mapping onto the process cell library.
func ParseVerilog(r io.Reader, p *Process) (*Circuit, error) {
	return hdl.ParseVerilog(r, p)
}

// WriteVerilog serializes a gate-level circuit as structural Verilog.
func WriteVerilog(w io.Writer, c *Circuit) error { return hdl.WriteVerilog(w, c) }

// ExpandTransistors lowers a gate-level circuit to the transistor
// level for Full-Custom estimation.
func ExpandTransistors(c *Circuit, p *Process) (*Circuit, error) {
	return cells.ExpandTransistors(c, p)
}

// The estimator (the paper's contribution).
type (
	// SCOptions configures the Standard-Cell estimator.
	SCOptions = core.SCOptions
	// SCEstimate is a Standard-Cell estimation result (Eq. 12/14).
	SCEstimate = core.SCEstimate
	// FCMode selects exact or average device areas (Table 1 modes).
	FCMode = core.FCMode
	// FCEstimate is a Full-Custom estimation result (Eq. 13).
	FCEstimate = core.FCEstimate
	// Result bundles both methodologies' estimates for one module.
	Result = core.Result
)

// Full-Custom device-area modes.
const (
	FCExactAreas   = core.FCExactAreas
	FCAverageAreas = core.FCAverageAreas
)

// EstimateStandardCell runs the §4.1 Standard-Cell estimator on
// gathered statistics.
func EstimateStandardCell(s *Stats, p *Process, opts SCOptions) (*SCEstimate, error) {
	return core.EstimateStandardCell(s, p, opts)
}

// EstimateStandardCellCandidates returns several candidate shapes
// around the initial row count (the paper's §7 multi-shape output).
func EstimateStandardCellCandidates(s *Stats, p *Process, opts SCOptions, count int) ([]*SCEstimate, error) {
	return core.EstimateStandardCellCandidates(s, p, opts, count)
}

// EstimateStandardCellProfiled runs the Standard-Cell estimator with
// the per-row feed-through profile refinement (full Eq. 4/5 at every
// row instead of the central-row two-component bound).
func EstimateStandardCellProfiled(s *Stats, p *Process, opts SCOptions) (*SCEstimate, error) {
	return core.EstimateStandardCellProfiled(s, p, opts)
}

// FeedThroughProfile is the per-row expected feed-through count.
type FeedThroughProfile = core.FeedThroughProfile

// FeedThroughRowProfile computes each row's expected feed-through
// count for a module's net-degree histogram over n rows.
func FeedThroughRowProfile(s *Stats, n int) (*FeedThroughProfile, error) {
	return core.FeedThroughRowProfile(s, n)
}

// EstimateFullCustom runs the §4.2 Full-Custom estimator on a
// transistor-level circuit.
func EstimateFullCustom(c *Circuit, p *Process, mode FCMode) (*FCEstimate, error) {
	return core.EstimateFullCustom(c, p, mode)
}

// Estimate runs both estimators on a circuit (expanding cells to
// transistors for the Full-Custom side).
//
// Deprecated: Estimate compiles and discards a plan per call.  Use
// Compile once and Plan.Estimate for repeated questions about the
// same circuit; this shim remains for one-shot convenience.
func Estimate(c *Circuit, p *Process, opts SCOptions) (*Result, error) {
	return engine.Estimate(context.Background(), c, p, engineOpts(opts)...)
}

// Pipeline is the end-to-end Fig. 1 flow: .mnet + process in,
// estimate record out.
//
// Deprecated: use PipelineCtx, or Compile + Plan.Estimate when the
// circuit is already parsed; this shim remains for one-shot
// convenience.
func Pipeline(r io.Reader, p *Process, opts SCOptions) (*Result, error) {
	return engine.Pipeline(context.Background(), r, p, engineOpts(opts)...)
}

// engineOpts translates the legacy SCOptions knobs into engine
// options, so the deprecated shims stay bit-identical to the old
// core entry points.
func engineOpts(opts SCOptions) []EngineOption {
	return []EngineOption{engine.WithRows(opts.Rows), engine.WithTrackSharing(opts.TrackSharing)}
}

// Ground-truth layout flow (the evaluation substrate).
type (
	// LayoutModule is a measured module layout.
	LayoutModule = layout.Module
	// Placement is a legal row placement.
	Placement = place.Placement
	// PlaceOptions configures the annealing placer.
	PlaceOptions = place.Options
	// RouteOptions configures the channel router.
	RouteOptions = route.Options
	// RouteResult is a routing outcome.
	RouteResult = route.Result
)

// PlaceCircuit places a circuit into rows with simulated annealing.
func PlaceCircuit(c *Circuit, p *Process, opts PlaceOptions) (*Placement, error) {
	return place.Place(c, p, opts)
}

// RoutePlacement channel-routes a placement.
func RoutePlacement(pl *Placement, opts RouteOptions) (*RouteResult, error) {
	return route.RouteModule(pl, opts)
}

// LayoutStandardCell places, routes, and measures a standard-cell
// module (the TimberWolf stand-in of Table 2).
func LayoutStandardCell(c *Circuit, p *Process, rows int, seed int64) (*LayoutModule, error) {
	return layout.LayoutStandardCell(c, p, rows, seed)
}

// SynthesizeFullCustom constructs and measures a transistor-level
// layout (the manual-layout stand-in of Table 1).
func SynthesizeFullCustom(c *Circuit, p *Process, seed int64) (*LayoutModule, error) {
	return layout.SynthesizeFullCustom(c, p, seed)
}

// Detailed geometry and interchange.
type (
	// DetailedRouting is a full per-track channel-routing result.
	DetailedRouting = route.Detailed
	// Geometry is a module's concrete rectangle-level layout.
	Geometry = layout.Geometry
)

// DetailRoutePlacement performs detailed (per-track, vertical-
// constraint-aware) channel routing over a placement.
func DetailRoutePlacement(pl *Placement) (*DetailedRouting, error) {
	return route.DetailRoute(pl)
}

// BuildGeometry turns a placement plus detailed routing into concrete
// rectangle geometry.
func BuildGeometry(pl *Placement, det *DetailedRouting, p *Process) (*Geometry, error) {
	return layout.BuildGeometry(pl, det, p)
}

// WriteCIF serializes a module geometry as a CIF (Caltech
// Intermediate Form) file.
func WriteCIF(w io.Writer, g *Geometry, p *Process) error { return layout.WriteCIF(w, g, p) }

// WriteSVG renders a module geometry as an SVG document (scale SVG
// units per λ; ≤ 0 selects the default).
func WriteSVG(w io.Writer, g *Geometry, scale int) error { return layout.WriteSVG(w, g, scale) }

// WritePlanSVG renders a floor plan as an SVG document.
func WritePlanSVG(w io.Writer, plan *FloorPlan, scale float64) error {
	return floorplan.WriteSVG(w, plan, scale)
}

// DRCViolation is one design-rule violation found in a geometry.
type DRCViolation = layout.DRCViolation

// CheckDRC runs the design-rule checks over a module geometry.
func CheckDRC(g *Geometry, p *Process) []DRCViolation { return layout.CheckDRC(g, p) }

// WriteBench serializes a gate-level circuit in ISCAS .bench form.
func WriteBench(w io.Writer, c *Circuit) error { return hdl.WriteBench(w, c) }

// Estimate database and floor planning.
type (
	// EstimateDB is the floor planner's input database.
	EstimateDB = db.Database
	// ModuleRecord is one module's estimates in the database.
	ModuleRecord = db.Module
	// ShapeRecord is one candidate module shape.
	ShapeRecord = db.Shape
	// CongestionRecord is a module's congestion-map summary in the
	// database (the `congest` directive).
	CongestionRecord = db.Congestion
	// GlobalNet is a chip-level net between module ports.
	GlobalNet = db.GlobalNet
	// GlobalPin is one endpoint of a global net.
	GlobalPin = db.GlobalPin
	// FloorPlan is a finished slicing floor plan.
	FloorPlan = floorplan.Plan
	// Chip is a multi-module design.
	Chip = gen.Chip
)

// ModuleRecordFromResult converts an estimate result into a database
// record.
func ModuleRecordFromResult(res *Result) ModuleRecord { return db.FromResult(res) }

// ReadEstimateDB parses a serialized estimate database.
func ReadEstimateDB(r io.Reader) (*EstimateDB, error) { return db.Read(r) }

// WriteEstimateDB serializes an estimate database.
func WriteEstimateDB(w io.Writer, d *EstimateDB) error { return db.Write(w, d) }

// PlanChip floor-plans an estimate database (minimum area).
func PlanChip(d *EstimateDB) (*FloorPlan, error) { return floorplan.PlanChip(d) }

// PlanOptions tunes the floor planner's objective.
type PlanOptions = floorplan.PlanOptions

// PlanChipOpt floor-plans with an explicit objective (e.g. trading
// chip area against global wire length).
func PlanChipOpt(d *EstimateDB, opts PlanOptions) (*FloorPlan, error) {
	return floorplan.PlanChipOpt(d, opts)
}

// GlobalRouteResult is a chip-level wiring estimate over a plan.
type GlobalRouteResult = floorplan.GlobalRouteResult

// GlobalRoute estimates the chip-level wiring demand of a floor plan
// on a grid×grid congestion map.
func GlobalRoute(d *EstimateDB, plan *FloorPlan, p *Process, grid int) (*GlobalRouteResult, error) {
	return floorplan.GlobalRoute(d, plan, p, grid)
}

// Plan-driven floor planning: the simulated-annealing search over
// engine Plans, with shape candidates from Plan.Candidates and a
// routability term from the per-channel overflow probabilities.
type (
	// PlanModule names one compiled plan entering the annealer.
	PlanModule = floorplan.PlanModule
	// FloorplanNet is a chip-level net between annealer modules.
	FloorplanNet = floorplan.Net
	// FloorplanNetPin is one endpoint of a FloorplanNet.
	FloorplanNetPin = floorplan.NetPin
	// FloorplanOption tunes the annealer (seed, budget, weights).
	FloorplanOption = floorplan.Option
	// FloorplanProgress is one annealer progress report.
	FloorplanProgress = floorplan.Progress
	// ModuleCongest is one module's congestion detail in a plan.
	ModuleCongest = floorplan.ModuleCongest
	// ChannelRisk is one routing channel's overflow probability.
	ChannelRisk = floorplan.ChannelRisk
	// FloorplanStats summarizes one annealer search.
	FloorplanStats = floorplan.SearchStats
)

// PlanModules floor-plans compiled engine Plans with the annealer;
// nets weight the wire-length and routability cost terms.
func PlanModules(ctx context.Context, chip string, mods []PlanModule, nets []FloorplanNet, opts ...FloorplanOption) (*FloorPlan, error) {
	return floorplan.PlanModules(ctx, chip, mods, nets, opts...)
}

// WritePlanText renders a plan in the canonical text form — the
// deterministic, byte-stable rendering golden tests diff.
func WritePlanText(w io.Writer, plan *FloorPlan) error { return floorplan.WritePlanText(w, plan) }

// WithCongestWeight weights the routability term of the anneal cost.
func WithCongestWeight(w float64) FloorplanOption { return floorplan.WithCongestWeight(w) }

// WithWireWeight weights the wire-length term of the anneal cost.
func WithWireWeight(w float64) FloorplanOption { return floorplan.WithWireWeight(w) }

// WithFloorplanSeed fixes the annealer's random source.
func WithFloorplanSeed(seed int64) FloorplanOption { return floorplan.WithSeed(seed) }

// WithBudget sets the annealer's move budget (< 0 = greedy).
func WithBudget(moves int) FloorplanOption { return floorplan.WithBudget(moves) }

// WithFloorplanCandidates sets the shape-candidate count requested
// from each Plan (the engine-level WithCandidates analogue).
func WithFloorplanCandidates(count int) FloorplanOption { return floorplan.WithCandidates(count) }

// WithFloorplanTrackSharing toggles the Eq. 10/11 refinement for the
// annealer's candidate shapes.
func WithFloorplanTrackSharing(on bool) FloorplanOption { return floorplan.WithTrackSharing(on) }

// WithProgress registers a per-move progress callback.
func WithProgress(fn func(FloorplanProgress)) FloorplanOption { return floorplan.WithProgress(fn) }

// EstimateChip estimates all modules of a chip concurrently (workers
// ≤ 0 selects GOMAXPROCS), preserving module order.
//
// Deprecated: use the engine's EstimateChipCtx, or compile the
// modules once and fan out with EstimatePlans; this shim remains for
// one-shot convenience.
func EstimateChip(modules []*Circuit, p *Process, opts SCOptions, workers int) ([]*Result, error) {
	return engine.EstimateChip(context.Background(), modules, p,
		append(engineOpts(opts), engine.WithWorkers(workers))...)
}

// Workload generation.
type (
	// RandomConfig parameterizes RandomCircuit.
	RandomConfig = gen.RandomConfig
	// ChipConfig parameterizes RandomChip.
	ChipConfig = gen.ChipConfig
)

// RandomCircuit generates a seeded random gate-level circuit.
func RandomCircuit(cfg RandomConfig, p *Process) (*Circuit, error) { return gen.RandomCircuit(cfg, p) }

// RandomChip generates a seeded multi-module chip.
func RandomChip(cfg ChipConfig, p *Process) (*Chip, error) { return gen.RandomChip(cfg, p) }

// Chain returns a k-inverter chain circuit, the simplest
// 2-component-net workload.
func Chain(name string, k int, p *Process) (*Circuit, error) { return gen.Chain(name, k, p) }

// FullCustomSuite returns the five Table-1-style benchmark modules.
func FullCustomSuite(p *Process) ([]*Circuit, error) { return gen.FullCustomSuite(p) }

// StandardCellSuite returns the two Table-2-style benchmark modules.
func StandardCellSuite(p *Process) ([]*Circuit, error) { return gen.StandardCellSuite(p) }

// Probability machinery (paper §4.1), exposed for analysis tools.

// ExpectedRowSpan returns E(i) of Eqs. 2–3: the expected number of
// rows spanned by a D-component net over n rows.
func ExpectedRowSpan(n, D int) (float64, error) { return prob.ExpectedRowSpan(n, D) }

// FeedThroughProb returns the probability that a D-component net
// needs a feed-through in row i of n (Eqs. 4–5 closed form).
func FeedThroughProb(n, D, i int) (float64, error) { return prob.FeedThroughProb(n, D, i) }

// CentralFeedThroughProb returns Eq. 9, the central-row feed-through
// probability under the two-component-net model.
func CentralFeedThroughProb(n int) (float64, error) { return prob.CentralFeedThroughProb(n) }

// RowSpanVariance returns Var(i) of the Eq. 2 row-span distribution —
// the second-moment extension to the paper's expectations.
func RowSpanVariance(n, D int) (float64, error) { return prob.RowSpanVariance(n, D) }

// TrackInterval returns mean ± z·σ bounds on the total track count of
// a net-degree histogram over n rows.
func TrackInterval(n int, degreeCount map[int]int, z float64) (mean, lo, hi float64, err error) {
	return prob.TrackInterval(n, degreeCount, z)
}

// Baselines.
type (
	// PLESTModel is the density-calibrated comparator of §2.
	PLESTModel = baseline.PLESTModel
	// PLA parameterizes the Gerveshi PLA area model.
	PLA = baseline.PLA
)

// NaiveEstimate is the active-area×factor rule of thumb.
func NaiveEstimate(s *Stats, factor float64) (float64, error) { return baseline.Naive(s, factor) }

// CalibratePLEST measures channel density from real layouts of the
// training circuits and returns the PLEST-style model.
func CalibratePLEST(train []*Circuit, p *Process, rows int, seed int64) (*PLESTModel, error) {
	return baseline.CalibratePLEST(train, p, rows, seed)
}

// PLA substrate (the Gerveshi [1] linear-area context).
type (
	// PLAPersonality is a PLA programming matrix that can be lowered
	// to a transistor netlist.
	PLAPersonality = pla.Personality
)

// RandomPLA generates a seeded random PLA personality.
func RandomPLA(inputs, outputs, terms int, density float64, seed int64) (*PLAPersonality, error) {
	return pla.Random(inputs, outputs, terms, density, seed)
}

// Interconnect-complexity metrics.
type (
	// DegreeStats summarizes a circuit's net-degree distribution.
	DegreeStats = metrics.DegreeStats
	// RentResult is a fitted Rent's-rule model.
	RentResult = metrics.RentResult
)

// CircuitDegrees computes the net-degree statistics of a circuit.
func CircuitDegrees(c *Circuit) *DegreeStats { return metrics.Degrees(c) }

// EvalCircuit evaluates a combinational gate-level circuit on an
// input assignment (net name → value) and returns every net's value —
// the equivalence-checking simulator the mapper is verified with.
func EvalCircuit(c *Circuit, inputs map[string]bool) (map[string]bool, error) {
	return sim.Eval(c, inputs)
}

// RentExponent estimates the circuit's Rent exponent by recursive
// bisection over a connectivity-order chunking.
func RentExponent(c *Circuit) (*RentResult, error) { return metrics.Rent(c) }

// RentExponentFM estimates the Rent exponent with recursive
// Fiduccia–Mattheyses min-cut bisection (higher-quality partitions).
func RentExponentFM(c *Circuit, seed int64) (*RentResult, error) {
	return metrics.RentFM(c, seed)
}

// Bipart is a two-way min-cut partition of a circuit's devices.
type Bipart = metrics.Bipart

// Bipartition splits the device subset (nil = all) into two balanced
// halves with a Fiduccia–Mattheyses min-cut pass.
func Bipartition(c *Circuit, subset []int, seed int64) (*Bipart, error) {
	return metrics.Bipartition(c, subset, seed)
}

// Observability: hierarchical spans, a process-wide metrics registry,
// and profiling hooks across the estimate/place/route pipeline.  Pass
// a context prepared with WithTraceSink to any of the *Ctx variants
// below and every stage records a span; without a sink the
// instrumentation is free (nil-span fast path, no allocations).
type (
	// TraceSink receives completed spans; implementations must be
	// concurrency-safe.
	TraceSink = obs.Sink
	// TraceSpan is one timed pipeline region (nil is a valid no-op).
	TraceSpan = obs.Span
	// TraceSpanData is the record a sink receives per span.
	TraceSpanData = obs.SpanData
	// TraceAttr is one key/value pair attached to a span.
	TraceAttr = obs.Attr
	// TreeTraceSink accumulates spans and renders a summary tree.
	TreeTraceSink = obs.TreeSink
	// JSONLTraceSink streams spans as JSON lines.
	JSONLTraceSink = obs.JSONLSink
	// MetricsRegistry holds counters, gauges, and histograms with
	// Prometheus-style text exposition.
	MetricsRegistry = obs.Registry
)

// WithTraceSink returns a context whose pipeline spans record to sink.
func WithTraceSink(ctx context.Context, sink TraceSink) context.Context {
	return obs.WithSink(ctx, sink)
}

// StartSpan opens a span for caller-side work (library users nesting
// their own stages among the pipeline's).
func StartSpan(ctx context.Context, name string) (context.Context, *TraceSpan) {
	return obs.Start(ctx, name)
}

// NewJSONLTraceSink returns a sink writing one JSON line per span.
func NewJSONLTraceSink(w io.Writer) *JSONLTraceSink { return obs.NewJSONL(w) }

// NewTreeTraceSink returns an accumulating sink whose WriteTree
// renders the human-readable span summary tree.
func NewTreeTraceSink() *TreeTraceSink { return obs.NewTree() }

// MultiTraceSink fans spans out to several sinks (nil sinks dropped).
func MultiTraceSink(sinks ...TraceSink) TraceSink { return obs.Multi(sinks...) }

// Metrics returns the process-wide registry the pipeline records
// into.
func Metrics() *MetricsRegistry { return obs.Default }

// WriteMetrics emits every pipeline metric in the Prometheus text
// exposition format.
func WriteMetrics(w io.Writer) error { return obs.Default.WritePrometheus(w) }

// StartCPUProfile begins a pprof CPU profile into path; call the
// returned stop function to finish it.
func StartCPUProfile(path string) (stop func() error, err error) {
	return obs.StartCPUProfile(path)
}

// WriteHeapProfile snapshots the live heap into path.
func WriteHeapProfile(path string) error { return obs.WriteHeapProfile(path) }

// Context-carrying variants of the pipeline entry points.  Each is
// identical to its plain counterpart plus span/metric recording under
// the context's trace sink.

// EstimateCtx is Estimate with observability.
//
// Deprecated: compiles and discards a plan per call; use CompileCtx
// once and Plan.Estimate for repeated questions about the same
// circuit.
func EstimateCtx(ctx context.Context, c *Circuit, p *Process, opts SCOptions) (*Result, error) {
	return engine.Estimate(ctx, c, p, engineOpts(opts)...)
}

// EstimateChipCtx is EstimateChip with observability (per-module
// spans under one chip span, worker utilization metrics).
//
// Deprecated: compile the modules once and fan out with
// EstimatePlans when plans are reused; this shim remains for
// one-shot convenience.
func EstimateChipCtx(ctx context.Context, modules []*Circuit, p *Process, opts SCOptions, workers int) ([]*Result, error) {
	return engine.EstimateChip(ctx, modules, p,
		append(engineOpts(opts), engine.WithWorkers(workers))...)
}

// PipelineCtx is Pipeline with observability.
//
// Deprecated: use CompileCtx + Plan.Estimate when the circuit is
// already parsed; this shim remains for one-shot convenience.
func PipelineCtx(ctx context.Context, r io.Reader, p *Process, opts SCOptions) (*Result, error) {
	return engine.Pipeline(ctx, r, p, engineOpts(opts)...)
}

// EstimateStandardCellProfiledCtx is EstimateStandardCellProfiled
// with observability.
func EstimateStandardCellProfiledCtx(ctx context.Context, s *Stats, p *Process, opts SCOptions) (*SCEstimate, error) {
	return core.EstimateStandardCellProfiledCtx(ctx, s, p, opts)
}

// ParseMnetCtx, ParseBenchCtx and ParseVerilogCtx are the front-end
// parsers with observability.
func ParseMnetCtx(ctx context.Context, r io.Reader) (*Circuit, error) {
	return hdl.ParseMnetCtx(ctx, r)
}

// ParseBenchCtx is ParseBench with observability.
func ParseBenchCtx(ctx context.Context, r io.Reader, name string, p *Process) (*Circuit, error) {
	return hdl.ParseBenchCtx(ctx, r, name, p)
}

// ParseVerilogCtx is ParseVerilog with observability.
func ParseVerilogCtx(ctx context.Context, r io.Reader, p *Process) (*Circuit, error) {
	return hdl.ParseVerilogCtx(ctx, r, p)
}

// PlaceCircuitCtx is PlaceCircuit with observability (annealing
// statistics on the "place" span).
func PlaceCircuitCtx(ctx context.Context, c *Circuit, p *Process, opts PlaceOptions) (*Placement, error) {
	return place.PlaceCtx(ctx, c, p, opts)
}

// RoutePlacementCtx is RoutePlacement with observability.
func RoutePlacementCtx(ctx context.Context, pl *Placement, opts RouteOptions) (*RouteResult, error) {
	return route.RouteModuleCtx(ctx, pl, opts)
}

// LayoutStandardCellCtx is LayoutStandardCell with observability.
func LayoutStandardCellCtx(ctx context.Context, c *Circuit, p *Process, rows int, seed int64) (*LayoutModule, error) {
	return layout.LayoutStandardCellCtx(ctx, c, p, rows, seed)
}

// SynthesizeFullCustomCtx is SynthesizeFullCustom with observability.
func SynthesizeFullCustomCtx(ctx context.Context, c *Circuit, p *Process, seed int64) (*LayoutModule, error) {
	return layout.SynthesizeFullCustomCtx(ctx, c, p, seed)
}

// PlanChipCtx is PlanChip with observability.
func PlanChipCtx(ctx context.Context, d *EstimateDB) (*FloorPlan, error) {
	return floorplan.PlanChipCtx(ctx, d)
}

// PlanChipOptCtx is PlanChipOpt with observability.
func PlanChipOptCtx(ctx context.Context, d *EstimateDB, opts PlanOptions) (*FloorPlan, error) {
	return floorplan.PlanChipOptCtx(ctx, d, opts)
}

// Serving: the estimator behind an HTTP/JSON API (cmd/maest-serve)
// with a content-addressed result cache, concurrency limiting,
// per-request deadlines, and graceful shutdown.  The handler is
// exported so the service can be embedded in a larger mux.
type (
	// ServeOptions configures the estimation service handler.
	ServeOptions = serve.Options
	// EstimateServer is the HTTP handler serving /v1/estimate,
	// /v1/estimate/batch, /healthz, and /metrics.
	EstimateServer = serve.Server
	// EstimateCache is the content-addressed LRU result cache.
	EstimateCache = serve.Cache
	// EstimateCacheKey is the SHA-256 identity of one estimation
	// question (canonicalized circuit + process + options).
	EstimateCacheKey = serve.Key
	// EstimateRequest is the POST /v1/estimate wire payload.
	EstimateRequest = serve.EstimateRequest
	// EstimateResponse is one module's wire answer.
	EstimateResponse = serve.EstimateResponse
	// BatchEstimateRequest is the POST /v1/estimate/batch payload.
	BatchEstimateRequest = serve.BatchRequest
	// BatchEstimateResponse answers a batch in request order.
	BatchEstimateResponse = serve.BatchResponse
)

// NewEstimateServer returns the estimation service handler.
func NewEstimateServer(opts ServeOptions) *EstimateServer { return serve.New(opts) }

// NewEstimateCache returns a content-addressed result cache holding
// up to capacity entries (capacity < 1 disables caching).
func NewEstimateCache(capacity int) *EstimateCache { return serve.NewCache(capacity) }

// CacheKeyFor computes the content-addressed identity of one
// estimation question: the same circuit (however its source text was
// ordered or commented), process, and options always map to the same
// key.
func CacheKeyFor(c *Circuit, processName string, opts SCOptions) EstimateCacheKey {
	return serve.CacheKey(c, processName, opts)
}

// Request telemetry (the observatory): a lock-cheap flight recorder
// of recent requests, per-endpoint latency quantiles, and histogram
// quantile estimation.  The service populates these automatically
// (ServeOptions.FlightSize / ServeOptions.AccessLog); they are
// exported so embedders can mount EstimateServer.DebugHandler or run
// their own recorder.
type (
	// FlightRecorder is a fixed-capacity ring of recent request
	// records; a nil recorder is a valid disabled no-op.
	FlightRecorder = obs.Flight
	// FlightRecord is one recorded request: identity, outcome,
	// per-stage durations, and a span-tree summary.
	FlightRecord = obs.FlightRecord
	// FlightStage is one named stage duration inside a request.
	FlightStage = obs.FlightStage
	// FlightSpan is one summarized span of a request's trace tree.
	FlightSpan = obs.FlightSpan
	// MetricHistogram is a registry histogram; its Quantile method
	// estimates p50/p90/p99 by interpolation within buckets.
	MetricHistogram = obs.Histogram
	// ServeEndpointLatency is one endpoint's latency distribution
	// summary (count, mean, p50/p90/p99).
	ServeEndpointLatency = serve.EndpointLatency
)

// NewFlightRecorder returns a flight recorder keeping the most recent
// capacity request records (capacity < 1 returns the nil no-op).
func NewFlightRecorder(capacity int) *FlightRecorder { return obs.NewFlight(capacity) }

// ServeLatencySummary reports every service endpoint's latency
// distribution from the process-wide histograms.
func ServeLatencySummary() []ServeEndpointLatency { return serve.LatencySummary() }

// Congestion analysis: the probabilistic routability subsystem
// (internal/congest).  It refines the Eq. 2–3 / Eq. 4–11 expectations
// into per-channel track-demand distributions and emits a congestion
// map — utilization, overflow probability, feed-through pressure, and
// ranked hotspots — for standard-cell rows and the gridded
// full-custom variant of the Eq. 13 model.
type (
	// CongestModel selects the per-channel demand accounting.
	CongestModel = congest.Model
	// CongestOptions configures a congestion analysis.
	CongestOptions = congest.Options
	// CongestMap is one module's congestion map.
	CongestMap = congest.Map
	// CongestChannel is one routing channel's demand picture.
	CongestChannel = congest.Channel
	// CongestRowFeeds is one row's feed-through pressure.
	CongestRowFeeds = congest.RowFeeds
	// CongestHotspot is one ranked congestion risk.
	CongestHotspot = congest.Hotspot
	// CongestValidation scores a predicted map against a routed
	// layout's channel assignments.
	CongestValidation = congest.Validation
	// CongestionRequest is the POST /v1/congestion wire payload.
	CongestionRequest = serve.CongestionRequest
	// CongestionResponse is one module's congestion wire answer.
	CongestionResponse = serve.CongestionResponse
)

// The congestion demand models: CongestOccupancy is the paper's own
// Eq. 2–3 accounting (total expected demand equals the Eq. 3 track
// expectation); CongestCrossing matches the spine router's channel
// usage and is the model validated against routed layouts.
const (
	CongestOccupancy = congest.ModelOccupancy
	CongestCrossing  = congest.ModelCrossing
)

// ParseCongestModel resolves a demand-model name ("occupancy",
// "crossing", or empty for the default) for flags and request fields.
func ParseCongestModel(s string) (CongestModel, error) { return congest.ParseModel(s) }

// AnalyzeCongestion builds the congestion map of a module's gathered
// statistics over rows standard-cell rows.
func AnalyzeCongestion(s *Stats, rows int, opts CongestOptions) (*CongestMap, error) {
	return congest.Analyze(s, rows, opts)
}

// AnalyzeCongestionCtx is AnalyzeCongestion with observability.
func AnalyzeCongestionCtx(ctx context.Context, s *Stats, rows int, opts CongestOptions) (*CongestMap, error) {
	return congest.AnalyzeCtx(ctx, s, rows, opts)
}

// AnalyzeGridCongestion builds the gridded full-custom congestion map
// (gridRows 0 selects the ⌈√N⌉ default).
func AnalyzeGridCongestion(s *Stats, gridRows int, opts CongestOptions) (*CongestMap, error) {
	return congest.AnalyzeGrid(s, gridRows, opts)
}

// AnalyzeGridCongestionCtx is AnalyzeGridCongestion with
// observability.
func AnalyzeGridCongestionCtx(ctx context.Context, s *Stats, gridRows int, opts CongestOptions) (*CongestMap, error) {
	return congest.AnalyzeGridCtx(ctx, s, gridRows, opts)
}

// ValidateCongestion scores a predicted congestion map against the
// channel assignments of a routed layout.
func ValidateCongestion(m *CongestMap, routed *RouteResult) (*CongestValidation, error) {
	return congest.ValidateRoute(m, routed)
}

// InitialRowCount exposes the §5 row-count initialization, the row
// count the estimator would pick automatically for a module.
func InitialRowCount(s *Stats, p *Process) int { return core.InitialRows(s, p) }

// CongestKeyFor computes the content-addressed identity of one
// congestion question, the /v1/congestion analogue of CacheKeyFor.
func CongestKeyFor(c *Circuit, processName string, rows int, gridded bool, opts CongestOptions) EstimateCacheKey {
	return serve.CongestKey(c, processName, rows, gridded, opts)
}

// The estimation engine (internal/engine): a compile/execute split
// over the paper's estimators.  Compile runs the input-dependent work
// once — netlist statistics, degree classes, technology constants —
// into an immutable, content-addressed Plan; every estimator then
// executes against the plan, memoizing per-configuration results.
// Anything asking more than one question about the same circuit
// (candidate sweeps, congestion after an estimate, a floorplanner
// loop) should compile once and share the plan; the one-shot
// Estimate/Pipeline shims above remain for single questions.
//
//	pl, err := maest.Compile(circ, proc)
//	res, err := pl.Estimate(ctx, maest.WithTrackSharing(true))
//	cmap, err := pl.Congestion(ctx)   // reuses the compiled stats
type (
	// Plan is an immutable compiled circuit: memoized statistics and
	// tech constants every estimator executes against.  Safe for
	// concurrent use.
	Plan = engine.Plan
	// PlanConstants are the technology-scaled constants a plan
	// resolves at compile time.
	PlanConstants = engine.Constants
	// PlanHash is the SHA-256 content address of a plan (canonical
	// circuit plus process serialization).
	PlanHash = engine.Hash
	// EngineOption mutates the engine's execution options.
	EngineOption = engine.Option
	// EngineOptions is the consolidated execution-option set behind
	// the With* constructors.
	EngineOptions = engine.Options
	// CongestDistributions are a plan's per-channel demand and
	// per-row feed-through distributions — the expensive convolution
	// half of a congestion analysis, reusable across scoring options.
	CongestDistributions = congest.Distributions
	// PlanCache is the serving layer's LRU over compiled plans.
	PlanCache = serve.PlanCache
)

// Compile compiles a circuit against a process into a Plan.
func Compile(c *Circuit, p *Process) (*Plan, error) { return engine.Compile(c, p) }

// CompileCtx is Compile with observability (a "compile" span).
func CompileCtx(ctx context.Context, c *Circuit, p *Process) (*Plan, error) {
	return engine.CompileCtx(ctx, c, p)
}

// PlanHashFor computes the content address a circuit/process pair
// compiles to, without compiling.
func PlanHashFor(c *Circuit, p *Process) PlanHash { return engine.PlanHash(c, p) }

// WriteCanonicalCircuit emits the deterministic, order-normalized
// circuit rendering plan hashes and serving-cache keys build on.
func WriteCanonicalCircuit(w io.Writer, c *Circuit) { engine.WriteCanonicalCircuit(w, c) }

// AppendCanonicalCircuit appends the same canonical rendering to a
// byte slice — the allocation-free form for callers hashing many
// circuits through one reused buffer.
func AppendCanonicalCircuit(dst []byte, c *Circuit) []byte {
	return engine.AppendCanonicalCircuit(dst, c)
}

// EstimatePlans estimates already-compiled plans concurrently,
// preserving plan order — the reuse-friendly form of EstimateChip.
func EstimatePlans(ctx context.Context, plans []*Plan, opts ...EngineOption) ([]*Result, error) {
	return engine.EstimatePlans(ctx, plans, opts...)
}

// NewPlanCache returns an LRU over compiled plans holding up to
// capacity entries (capacity < 1 disables caching).
func NewPlanCache(capacity int) *PlanCache { return serve.NewPlanCache(capacity) }

// Execution options for Plan methods and the engine entry points.

// WithRows fixes the standard-cell row count (0 = §5 initialization).
func WithRows(rows int) EngineOption { return engine.WithRows(rows) }

// WithTrackSharing enables the Eq. 10/11 track-sharing refinement.
func WithTrackSharing(on bool) EngineOption { return engine.WithTrackSharing(on) }

// WithFCMode selects the Full-Custom device-area mode.
func WithFCMode(mode FCMode) EngineOption { return engine.WithFCMode(mode) }

// WithWorkers sets the chip-estimate worker count (≤ 0 GOMAXPROCS).
func WithWorkers(n int) EngineOption { return engine.WithWorkers(n) }

// WithCongestModel selects the congestion demand model.
func WithCongestModel(m CongestModel) EngineOption { return engine.WithCongestModel(m) }

// WithCapacity sets the per-channel track capacity for congestion
// scoring (0 = uncapacitated).
func WithCapacity(tracks int) EngineOption { return engine.WithCapacity(tracks) }

// WithFeedBudget sets the per-row feed-through budget for congestion
// scoring (0 = unbudgeted).
func WithFeedBudget(feeds int) EngineOption { return engine.WithFeedBudget(feeds) }

// WithGridded selects the gridded full-custom congestion variant.
func WithGridded(on bool) EngineOption { return engine.WithGridded(on) }

// WithCandidates sets the candidate-shape count for Plan.Candidates.
func WithCandidates(count int) EngineOption { return engine.WithCandidates(count) }

// ECO re-estimation: the typed edit algebra behind Plan.Delta.
// Plan.Delta(edits...) produces the plan for the edited circuit while
// reusing every compiled intermediate the edits provably do not touch
// — bit-identical to recompiling from scratch, at a fraction of the
// cost.
//
//	child, err := pl.Delta(maest.ConnectPin("g7", "net3"))
//	res, err := child.Estimate(ctx) // mostly memo hits
type (
	// Edit is one step of the ECO edit algebra; build values with
	// AddNet, RemoveNet, ConnectPin, DisconnectPin, AddCell,
	// RemoveCell, ResizeRows, and SwapProcess.
	Edit = engine.Edit
	// RowSpans optionally overrides where the standard-cell kernel's
	// Eq. 2–3 row-span quantities come from; implementations must be
	// bit-identical to the direct computation.
	RowSpans = core.RowSpans
	// FeedThroughMemo is the optional second interface a RowSpans
	// implementation may provide to also serve the Eq. 11 feed-through
	// expectation (the engine's memoSpans does, through distmemo);
	// results must be bit-identical to the direct computation.
	FeedThroughMemo = core.FeedThroughMemo
)

// AddNet creates a new net connecting the named devices.
func AddNet(name string, devices ...string) Edit { return engine.AddNet(name, devices...) }

// RemoveNet deletes the named net and every device pin on it; nets
// reaching a module port cannot be removed.
func RemoveNet(name string) Edit { return engine.RemoveNet(name) }

// ConnectPin adds one pin connecting the named device to the named
// net (created when absent).
func ConnectPin(device, net string) Edit { return engine.ConnectPin(device, net) }

// DisconnectPin removes the named device's last pin on the named net.
func DisconnectPin(device, net string) Edit { return engine.DisconnectPin(device, net) }

// AddCell adds a device instance of the given type connected to the
// named nets in pin order.
func AddCell(name, typ string, nets ...string) Edit { return engine.AddCell(name, typ, nets...) }

// RemoveCell deletes the named device instance and its pins.
func RemoveCell(name string) Edit { return engine.RemoveCell(name) }

// ResizeRows overrides the row count the child plan's execute methods
// default to — equivalent to passing WithRows to every call.
func ResizeRows(rows int) Edit { return engine.ResizeRows(rows) }

// SwapProcess retargets the module at a different process; Delta
// falls back to a full recompile for it.
func SwapProcess(p *Process) Edit { return engine.SwapProcess(p) }

// ApplyEdits applies a script's structural edits to a clone of the
// circuit — the reference semantics Plan.Delta is differentially
// tested against.
func ApplyEdits(c *Circuit, edits ...Edit) (*Circuit, error) {
	return engine.ApplyEdits(c, edits...)
}

// Estimator error taxonomy, exposed so callers can branch on failure
// classes (the serving layer maps ErrEstimate to HTTP 422).
var (
	// ErrEstimate tags every estimator failure.
	ErrEstimate = core.ErrEstimate
	// ErrCongest tags every congestion-analysis failure.
	ErrCongest = congest.ErrCongest
	// ErrCandidateCount reports a non-positive candidate count.
	ErrCandidateCount = core.ErrCandidateCount
	// ErrCandidateRange reports a candidate count exceeding the
	// feasible row range of the module.
	ErrCandidateRange = core.ErrCandidateRange
	// ErrPortInfeasible reports that no candidate shape offers the
	// module's ports enough perimeter.
	ErrPortInfeasible = core.ErrPortInfeasible
)

// SweepStandardCellShapes is the lenient candidate-sweep kernel
// behind EstimateStandardCellCandidates: it clamps the row window to
// feasible values instead of erroring, which is what a bundle
// estimate wants.  Callers needing strict validation should use
// EstimateStandardCellCandidates.
func SweepStandardCellShapes(s *Stats, p *Process, opts SCOptions, count int) ([]*SCEstimate, error) {
	return core.SweepStandardCellShapes(s, p, opts, count)
}

// ComputeCongestDistributions builds the per-channel and per-row
// demand distributions of one congestion question — the half of the
// analysis that depends only on (stats, rows, gridded, model).
func ComputeCongestDistributions(s *Stats, rows int, gridded bool, model CongestModel) (*CongestDistributions, error) {
	return congest.ComputeDistributions(s, rows, gridded, model)
}

// AnalyzeCongestDistributions scores precomputed distributions into a
// congestion map under the given capacity/feed-budget options.
func AnalyzeCongestDistributions(d *CongestDistributions, opts CongestOptions) (*CongestMap, error) {
	return congest.AnalyzeDistributions(d, opts)
}

// AnalyzeCongestDistributionsCtx is AnalyzeCongestDistributions with
// observability.
func AnalyzeCongestDistributionsCtx(ctx context.Context, d *CongestDistributions, opts CongestOptions) (*CongestMap, error) {
	return congest.AnalyzeDistributionsCtx(ctx, d, opts)
}

// CongestGridRows returns the default ⌈√N⌉ row count of the gridded
// full-custom congestion model for a module's statistics.
func CongestGridRows(s *Stats) int { return congest.GridRows(s) }
